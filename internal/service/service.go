// Package service is the deployment layer over serve.Predictor: a
// named, versioned model registry whose entries are immutable
// core.Model snapshots, each served by a replica pool that can be
// hot-swapped atomically.
//
// The paper's predictions only earn their keep inside a long-lived
// database front-end: models must answer under request deadlines and
// be redeployable — fine-tuned on fresh workload, swapped in — without
// downtime. Register stores an immutable snapshot (deep weight copy,
// so FineTune on the caller's model can never reach a served replica);
// Deploy starts a serve.Predictor pool over a chosen version and swaps
// it live; requests racing a swap retry transparently onto the new
// pool, so no request is dropped and every request runs entirely on
// one snapshot's weights — results are never a mix of two versions.
//
// With a Store configured, the registry is durable: Register writes
// each snapshot through internal/artifact as a checksummed binary
// blob, Deploy records the live version and its per-deployment
// options, and WarmBoot replays the store after a restart — every
// version is reloadable (rollback works across restarts) and the
// reloaded models predict bit-identically to the process that trained
// them.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// ErrNotFound is returned for operations on a model name that was
// never registered.
var ErrNotFound = errors.New("service: model not found")

// ErrNotDeployed is returned for predictions against a registered
// model with no live version.
var ErrNotDeployed = errors.New("service: model not deployed")

// ErrClosed is returned for any operation after Service.Close. It
// wraps serve.ErrClosed so one errors.Is sentinel covers "closed"
// at either layer (the facade exports exactly that).
var ErrClosed = fmt.Errorf("service: closed: %w", serve.ErrClosed)

// ErrNoIngest is returned by Observe on a service configured without
// an ingest log (Options.Ingest nil). Transports map it onto 400: the
// node cannot accept feedback, and retrying will not change that.
var ErrNoIngest = errors.New("service: no ingest log configured")

// Options configures a Service.
type Options struct {
	// Serve is the replica-pool template applied to every deployed
	// version (replica count, queue size, batching, admission policy).
	// Individual deployments can override the admission policy, queue
	// bound, and replica count via DeployOptions.
	Serve serve.Options
	// Store, when non-nil, makes the registry durable: every Register
	// persists the snapshot's artifact, every Deploy persists the live
	// version and its options, and WarmBoot reloads both after a
	// restart. nil keeps the registry memory-only.
	Store Store
	// Retain, when > 0, is the model GC retention policy: after every
	// Deploy/Swap the registry keeps only the newest Retain versions of
	// the deployed model plus whichever version is live, deleting the
	// rest from memory and the store. Pruned version numbers are never
	// reused. <= 0 keeps every version forever (the pre-GC behavior).
	Retain int
	// Ingest, when non-nil, is the durable request log: every Observe
	// appends its ground-truth outcome, and successful predicts are
	// sampled into it under IngestEvery. The log feeds the online
	// fine-tune pipeline (internal/online) and workload replay.
	Ingest *ingest.WAL
	// IngestEvery samples every Nth successful predict into the ingest
	// log (1 = every predict, 0 or negative = no predict sampling).
	// Counter-based, so the sample is deterministic and the hot path
	// stays allocation-free. Observe records are never sampled — ground
	// truth is always logged.
	IngestEvery int
}

// Admission policy names for DeployOptions and the HTTP API. The empty
// string inherits the service-wide template.
const (
	AdmissionInherit = ""
	AdmissionBlock   = "block"
	AdmissionReject  = "reject"
)

// DeployOptions are per-deployment overrides of the service-wide
// replica-pool template — the per-model admission quotas of a
// multi-tenant server: one model can reject under overload (bounded
// worst-case latency, attributable 429s in its own Stats) while
// another backpressures.
type DeployOptions struct {
	// Replicas overrides the template replica count when > 0.
	Replicas int `json:"replicas,omitempty"`
	// QueueSize bounds this deployment's request queue when > 0 (the
	// admission quota: requests beyond it are rejected or blocked per
	// Admission).
	QueueSize int `json:"queue_size,omitempty"`
	// Admission selects this deployment's full-queue policy:
	// AdmissionBlock, AdmissionReject, or AdmissionInherit ("") for the
	// template's.
	Admission string `json:"admission,omitempty"`
}

// apply resolves the overrides against the template.
func (o DeployOptions) apply(base serve.Options) (serve.Options, error) {
	if o.Replicas > 0 {
		base.Replicas = o.Replicas
	}
	if o.QueueSize > 0 {
		base.QueueSize = o.QueueSize
	}
	switch o.Admission {
	case AdmissionInherit:
	case AdmissionBlock:
		base.Admission = serve.AdmitBlock
	case AdmissionReject:
		base.Admission = serve.AdmitReject
	default:
		return base, fmt.Errorf("service: unknown admission policy %q (want %q or %q)",
			o.Admission, AdmissionBlock, AdmissionReject)
	}
	return base, nil
}

// ModelInfo describes one registered model at one version.
type ModelInfo struct {
	// Name is the registry key the model was registered under.
	Name string `json:"name"`
	// Model is the underlying predictor kind (ccnn, wlstm, ...).
	Model string `json:"model"`
	// Task is the prediction task the model was trained for.
	Task string `json:"task"`
	// Classification reports whether the task has class labels.
	Classification bool `json:"classification"`
	// Version is this snapshot's registry version (1-based).
	Version int `json:"version"`
	// Versions is the highest version number ever registered. Available
	// counts the versions actually deployable — quarantined or
	// GC-pruned versions leave permanent holes between the two.
	Versions  int `json:"versions"`
	Available int `json:"available"`
	// Live reports whether this version is currently serving; for
	// registry listings LiveVersion is the deployed version (0 = none).
	Live        bool `json:"live"`
	LiveVersion int  `json:"live_version"`
	// Deploy holds the live deployment's per-model overrides (zero
	// value = the service-wide template), so quota configuration is
	// visible wherever 429s are attributed.
	Deploy DeployOptions `json:"deploy,omitzero"`
}

// Prediction is one task-appropriate prediction with its provenance:
// the registry name and snapshot version that produced it.
type Prediction struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Classification results. Class is always present for
	// classification (0 is a legitimate class); Probs is omitted for
	// regression models.
	Classification bool      `json:"classification"`
	Class          int       `json:"class"`
	Probs          []float64 `json:"probs,omitempty"`
	// Regression results: log-space and original-unit values (always
	// present; 0 is a legitimate prediction).
	Log float64 `json:"log"`
	Raw float64 `json:"raw"`
}

// livePool is one deployed version: a predictor pool bound to an
// immutable snapshot, plus the per-deployment options it was started
// with. Swaps replace the whole struct atomically.
type livePool struct {
	version int
	opts    DeployOptions
	pred    *serve.Predictor
}

// entry is one registry slot: the append-only version history plus the
// atomically swappable live pool.
//
// versions is indexed by version-1 and may hold nil holes: a
// quarantined (corrupt-at-boot) or GC-pruned version keeps its slot so
// version numbers are never reused, but can no longer be deployed.
type entry struct {
	name string
	task core.Task
	kind string // underlying model name (ccnn, ...)

	mu       sync.Mutex // serializes Register version-append and Deploy
	versions []*core.Model
	live     atomic.Pointer[livePool]
	// gen is the generation of the entry's current deployment — the
	// cluster tie-breaker. A local Deploy persists gen+1 in its live
	// marker; SyncStore applies a marker observed in a shared store only
	// when its generation exceeds this one, so a node's own explicit
	// deploys win ties against anything it merely observed. Guarded by
	// mu.
	gen int64
}

// latest returns the highest available (non-hole) version, 0 if none.
func (e *entry) latest() int {
	for v := len(e.versions); v > 0; v-- {
		if e.versions[v-1] != nil {
			return v
		}
	}
	return 0
}

// available counts non-hole versions.
func (e *entry) available() int {
	n := 0
	for _, m := range e.versions {
		if m != nil {
			n++
		}
	}
	return n
}

// Service is a concurrent, versioned model registry and prediction
// front door. All methods are safe for concurrent use.
type Service struct {
	opts Options

	// ready reports warm-boot completion for the health endpoint: a
	// store-backed service is not ready until WarmBoot has replayed the
	// store (predictions against already-deployed models work either
	// way; readiness is the load balancer's signal).
	ready atomic.Bool

	// boot is the completed warm boot's report, surfaced through
	// /v1/healthz so a degraded (quarantining) boot is observable.
	boot atomic.Pointer[BootReport]

	// Ingest-log counters: the predict-sampling clock and the
	// service-side view of what reached (or failed to reach) the log.
	ingestN        atomic.Uint64
	ingestSampled  atomic.Uint64
	ingestObserved atomic.Uint64
	ingestDropped  atomic.Uint64

	// onlineStats, when set, supplies the online pipeline's per-model
	// state for StatsSnapshot (SetOnlineStats).
	onlineStats atomic.Pointer[func(model string) (OnlineStats, bool)]

	mu      sync.RWMutex // guards entries map and closed
	entries map[string]*entry
	closed  bool
}

// New creates an empty Service. A store-backed service (Options.Store
// non-nil) should WarmBoot next — it replays previously persisted
// models and flips the service ready; without a store the service is
// born ready.
func New(opts Options) *Service {
	s := &Service{opts: opts, entries: make(map[string]*entry)}
	s.ready.Store(opts.Store == nil)
	return s
}

// Ready reports whether the service finished warm-booting and is not
// closed — the /v1/healthz contract.
func (s *Service) Ready() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ready.Load() && !s.closed
}

// Register stores an immutable snapshot of m under name and returns
// its info. The first Register fixes the entry's task and model kind;
// later versions must match both (a registry name is one predictor
// contract, not a grab bag). Registering does not serve the version —
// call Deploy (or Swap, which does both).
//
// On a store-backed service the snapshot's artifact is persisted
// before the version becomes visible; a persistence failure (including
// registering a model kind the artifact format cannot serialize) fails
// the Register, so the store and the in-memory registry never
// disagree.
func (s *Service) Register(name string, m *core.Model) (ModelInfo, error) {
	if name == "" {
		return ModelInfo{}, errors.New("service: register: empty model name")
	}
	if m == nil {
		return ModelInfo{}, fmt.Errorf("service: register %q: nil model", name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ModelInfo{}, ErrClosed
	}
	e, ok := s.entries[name]
	if !ok {
		e = &entry{name: name, task: m.Task, kind: m.Name}
		s.entries[name] = e
	}
	s.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if m.Task != e.task || m.Name != e.kind {
		return ModelInfo{}, fmt.Errorf("service: register %q: got %s/%s, registry entry is %s/%s",
			name, m.Name, m.Task, e.kind, e.task)
	}
	snap := m.Snapshot()
	snap.Version = len(e.versions) + 1
	if s.opts.Store != nil {
		data, err := artifact.Encode(snap)
		if err != nil {
			return ModelInfo{}, fmt.Errorf("service: register %q: %w", name, err)
		}
		if err := s.opts.Store.Put(artifactKey(name, snap.Version), data); err != nil {
			return ModelInfo{}, fmt.Errorf("service: register %q: persist v%d: %w", name, snap.Version, err)
		}
	}
	e.versions = append(e.versions, snap)
	return e.info(snap.Version), nil
}

// Deploy makes the given version of name live, starting a fresh
// replica pool over its snapshot and atomically swapping it in; the
// previous pool finishes its in-flight requests and is closed.
// version <= 0 selects the latest. At most one DeployOptions may be
// given; it overrides the service-wide pool template (admission
// policy, queue bound, replicas) for this deployment only. Requests
// racing the swap retry onto the new pool, so a deploy drops nothing.
//
// On a store-backed service the live version and its options are
// persisted before the swap, so a later WarmBoot redeploys exactly
// this deployment.
func (s *Service) Deploy(name string, version int, opts ...DeployOptions) (ModelInfo, error) {
	var dopts DeployOptions
	if len(opts) > 1 {
		return ModelInfo{}, fmt.Errorf("service: deploy %q: at most one DeployOptions", name)
	}
	if len(opts) == 1 {
		dopts = opts[0]
	}
	serveOpts, err := dopts.apply(s.opts.Serve)
	if err != nil {
		return ModelInfo{}, fmt.Errorf("service: deploy %q: %w", name, err)
	}
	e, err := s.entry(name)
	if err != nil {
		return ModelInfo{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.available() == 0 {
		return ModelInfo{}, fmt.Errorf("service: deploy %q: no registered versions", name)
	}
	if version <= 0 {
		version = e.latest()
	}
	if version > len(e.versions) {
		return ModelInfo{}, fmt.Errorf("service: deploy %q: version %d not registered (have 1..%d)",
			name, version, len(e.versions))
	}
	if e.versions[version-1] == nil {
		return ModelInfo{}, fmt.Errorf("service: deploy %q: version %d is no longer available (quarantined or GC-pruned)",
			name, version)
	}
	// Double-check closed under the entry lock so a pool can never be
	// born after Close tore the others down.
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ModelInfo{}, ErrClosed
	}
	// Persist intent first: if the marker cannot be written the old
	// pool keeps serving and the store never claims a deployment that
	// did not happen. The marker carries the next generation: in a
	// shared store this is what lets other nodes' SyncStore adopt the
	// deploy, and what makes this node's own deploys win generation
	// ties against markers it merely observed.
	if s.opts.Store != nil {
		rec, err := json.Marshal(liveRecord{Version: version, Gen: e.gen + 1, DeployOptions: dopts})
		if err != nil {
			return ModelInfo{}, fmt.Errorf("service: deploy %q: %w", name, err)
		}
		if err := s.opts.Store.Put(liveKey(name), rec); err != nil {
			return ModelInfo{}, fmt.Errorf("service: deploy %q: persist live marker: %w", name, err)
		}
	}
	e.gen++
	next := &livePool{
		version: version,
		opts:    dopts,
		pred:    serve.NewPredictor(e.versions[version-1], serveOpts),
	}
	prev := e.live.Swap(next)
	if prev != nil {
		prev.pred.Close() // drains in-flight requests before returning
	}
	// Retention is enforced at the moment history grows stale — best
	// effort: a store hiccup during pruning must not undo a deploy that
	// already succeeded (GC() retries it on demand).
	s.gcEntryLocked(e)
	return e.info(version), nil
}

// Swap registers m as a new version and deploys it in one step — the
// FineTune → redeploy one-liner. Optional DeployOptions as in Deploy.
func (s *Service) Swap(name string, m *core.Model, opts ...DeployOptions) (ModelInfo, error) {
	// Validate the deploy options before registering: a bad option
	// must not leave an orphaned (and, on a durable registry,
	// persisted) version behind a failed Swap.
	if len(opts) > 1 {
		return ModelInfo{}, fmt.Errorf("service: swap %q: at most one DeployOptions", name)
	}
	if len(opts) == 1 {
		if _, err := opts[0].apply(s.opts.Serve); err != nil {
			return ModelInfo{}, fmt.Errorf("service: swap %q: %w", name, err)
		}
	}
	info, err := s.Register(name, m)
	if err != nil {
		return ModelInfo{}, err
	}
	return s.Deploy(name, info.Version, opts...)
}

// Predict runs the task-appropriate prediction for name's live
// version: class distribution and argmax for classification models,
// log- and raw-space values for regression models. ctx bounds the
// whole request (admission and queueing included).
func (s *Service) Predict(ctx context.Context, name, stmt string) (Prediction, error) {
	return s.PredictInto(ctx, name, stmt, nil)
}

// PredictInto is Predict with caller-owned result storage: for
// classification models the class distribution is written into probs
// (grown only when its capacity is insufficient) and the returned
// Prediction's Probs aliases it. With a capacity-sufficient probs the
// warm path performs zero allocations — the contract the binary wire
// transport's hot path is built on. Callers that retain the result
// across calls must copy Probs.
func (s *Service) PredictInto(ctx context.Context, name, stmt string, probs []float64) (Prediction, error) {
	e, err := s.entry(name)
	if err != nil {
		return Prediction{}, err
	}
	for {
		lp := e.live.Load()
		if lp == nil {
			return Prediction{}, ErrNotDeployed
		}
		pr, err := predictOn(ctx, lp, e, stmt, probs)
		if err == nil {
			s.sampleIngest(stmt, &pr)
			return pr, nil
		}
		if !errors.Is(err, serve.ErrClosed) {
			return pr, err
		}
		// The pool closed underneath us: a concurrent Deploy swapped it
		// (retry onto its replacement) or the Service closed (report it).
		if e.live.Load() == lp {
			return Prediction{}, ErrClosed
		}
	}
}

// predictOn runs one prediction against a specific live pool, writing
// classification probabilities into dst (grown as needed).
func predictOn(ctx context.Context, lp *livePool, e *entry, stmt string, dst []float64) (Prediction, error) {
	pr := Prediction{Name: e.name, Version: lp.version, Classification: e.task.IsClassification()}
	if pr.Classification {
		probs, err := lp.pred.ProbsIntoCtx(ctx, stmt, dst[:0])
		if err != nil {
			return Prediction{}, err
		}
		pr.Probs = probs
		pr.Class = argmax(probs)
		return pr, nil
	}
	v, err := lp.pred.PredictLogCtx(ctx, stmt)
	if err != nil {
		return Prediction{}, err
	}
	pr.Log = v
	pr.Raw = metrics.InverseLogTransform(v, lp.pred.Model().LogMin)
	return pr, nil
}

// PredictBatch runs one prediction per statement, fanning the work
// across the live pool's replicas, and returns the results in input
// order. Like Predict, a batch racing a hot swap retries onto the new
// pool; a completed batch comes entirely from one snapshot.
func (s *Service) PredictBatch(ctx context.Context, name string, stmts []string) ([]Prediction, error) {
	e, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	for {
		lp := e.live.Load()
		if lp == nil {
			return nil, ErrNotDeployed
		}
		out, err := predictBatchOn(ctx, lp, e, stmts)
		if err == nil {
			for i := range out {
				s.sampleIngest(stmts[i], &out[i])
			}
			return out, nil
		}
		if !errors.Is(err, serve.ErrClosed) {
			return out, err
		}
		if e.live.Load() == lp {
			return nil, ErrClosed
		}
	}
}

// predictBatchOn runs one batch against a specific live pool through
// the serving layer's concurrent batch methods (enqueue all, then
// await — the whole replica pool works the batch at once).
func predictBatchOn(ctx context.Context, lp *livePool, e *entry, stmts []string) ([]Prediction, error) {
	out := make([]Prediction, len(stmts))
	if e.task.IsClassification() {
		probs, err := lp.pred.ProbsBatchCtx(ctx, stmts)
		if err != nil {
			return nil, err
		}
		for i, p := range probs {
			out[i] = Prediction{
				Name: e.name, Version: lp.version, Classification: true,
				Probs: p, Class: argmax(p),
			}
		}
		return out, nil
	}
	logs, err := lp.pred.PredictLogBatchCtx(ctx, stmts)
	if err != nil {
		return nil, err
	}
	logMin := lp.pred.Model().LogMin
	for i, v := range logs {
		out[i] = Prediction{
			Name: e.name, Version: lp.version,
			Log: v, Raw: metrics.InverseLogTransform(v, logMin),
		}
	}
	return out, nil
}

// PredictClass returns the argmax class of name's live version.
func (s *Service) PredictClass(ctx context.Context, name, stmt string) (int, error) {
	pr, err := s.Predict(ctx, name, stmt)
	if err != nil {
		return 0, err
	}
	return pr.Class, nil
}

// PredictRaw returns the original-unit regression prediction of
// name's live version.
func (s *Service) PredictRaw(ctx context.Context, name, stmt string) (float64, error) {
	pr, err := s.Predict(ctx, name, stmt)
	if err != nil {
		return 0, err
	}
	return pr.Raw, nil
}

// sampleIngest appends every IngestEvery-th successful prediction to
// the ingest log as a Predicted record. Allocation-free: the counter
// is atomic, the record is stack-built, and the WAL reuses its encode
// buffer — the predict hot path's 0-alloc contract holds with sampling
// enabled.
func (s *Service) sampleIngest(stmt string, pr *Prediction) {
	w := s.opts.Ingest
	if w == nil || s.opts.IngestEvery <= 0 {
		return
	}
	if s.ingestN.Add(1)%uint64(s.opts.IngestEvery) != 0 {
		return
	}
	err := w.Append(ingest.Record{
		Time:      time.Now().UnixNano(),
		Kind:      ingest.Predicted,
		Model:     pr.Name,
		Statement: stmt,
		Class:     int32(pr.Class),
		Value:     pr.Log,
	})
	if err != nil {
		s.ingestDropped.Add(1)
		return
	}
	s.ingestSampled.Add(1)
}

// Observe appends a ground-truth outcome for a served statement to the
// ingest log: the classification label in class, or the regression
// label (raw units) in value. Observed records are what the online
// pipeline fine-tunes and canary-gates on. The model must be
// registered; the service must have an ingest log (ErrNoIngest
// otherwise).
func (s *Service) Observe(name, stmt string, class int, value float64) error {
	if s.opts.Ingest == nil {
		return ErrNoIngest
	}
	if _, err := s.entry(name); err != nil {
		return err
	}
	err := s.opts.Ingest.Append(ingest.Record{
		Time:      time.Now().UnixNano(),
		Kind:      ingest.Observed,
		Model:     name,
		Statement: stmt,
		Class:     int32(class),
		Value:     value,
	})
	if err != nil {
		s.ingestDropped.Add(1)
		return fmt.Errorf("service: observe %q: %w", name, err)
	}
	s.ingestObserved.Add(1)
	return nil
}

// LiveVersion returns name's live deployment: its version number and
// the registry's immutable snapshot of it. The snapshot is shared —
// callers must not mutate it (Snapshot or Replicate first). This is
// the online trainer's handle on "what is serving right now".
func (s *Service) LiveVersion(name string) (int, *core.Model, error) {
	e, err := s.entry(name)
	if err != nil {
		return 0, nil, err
	}
	lp := e.live.Load()
	if lp == nil {
		return 0, nil, ErrNotDeployed
	}
	e.mu.Lock()
	var m *core.Model
	if lp.version >= 1 && lp.version <= len(e.versions) {
		m = e.versions[lp.version-1]
	}
	e.mu.Unlock()
	if m == nil {
		return 0, nil, ErrNotDeployed
	}
	return lp.version, m, nil
}

// VersionModel returns the registry's immutable snapshot of a specific
// registered version, or ErrNotFound if that version was never
// registered, was quarantined, or has been GC-pruned. Like
// LiveVersion's model, the snapshot is shared — callers must not
// mutate it. The online pipeline's rollback watch uses this to score
// the previous live version against the one it swapped in.
func (s *Service) VersionModel(name string, version int) (*core.Model, error) {
	e, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	var m *core.Model
	if version >= 1 && version <= len(e.versions) {
		m = e.versions[version-1]
	}
	e.mu.Unlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %q version %d", ErrNotFound, name, version)
	}
	return m, nil
}

// SetOnlineStats registers the online pipeline's per-model state
// provider, surfaced through StatsSnapshot (and so through GET
// /v1/stats and the wire stats reply on both transports). nil
// unregisters.
func (s *Service) SetOnlineStats(provider func(model string) (OnlineStats, bool)) {
	if provider == nil {
		s.onlineStats.Store(nil)
		return
	}
	s.onlineStats.Store(&provider)
}

// Models lists every registered entry (sorted by name), reporting its
// version count and live version.
func (s *Service) Models() []ModelInfo {
	s.mu.RLock()
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]ModelInfo, len(entries))
	for i, e := range entries {
		e.mu.Lock()
		infos[i] = e.info(0)
		e.mu.Unlock()
	}
	return infos
}

// Stats snapshots the live pool's service metrics for name.
func (s *Service) Stats(name string) (serve.Stats, ModelInfo, error) {
	e, err := s.entry(name)
	if err != nil {
		return serve.Stats{}, ModelInfo{}, err
	}
	lp := e.live.Load()
	if lp == nil {
		return serve.Stats{}, ModelInfo{}, ErrNotDeployed
	}
	e.mu.Lock()
	info := e.info(lp.version)
	e.mu.Unlock()
	return lp.pred.Stats(), info, nil
}

// Close tears the registry down: every live pool is drained and
// closed, and all further operations return ErrClosed. Idempotent and
// safe under concurrent callers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock() // no Deploy can race a new pool in (it re-checks closed)
		if lp := e.live.Load(); lp != nil {
			lp.pred.Close()
		}
		e.mu.Unlock()
	}
}

// GCResult is one model's outcome of a retention pass.
type GCResult struct {
	// Name is the registry entry the pass ran over.
	Name string `json:"name"`
	// Removed lists the version numbers pruned (memory and store).
	Removed []int `json:"removed,omitempty"`
	// Retained counts the versions still available after the pass.
	Retained int `json:"retained"`
}

// GC enforces the retention policy (Options.Retain) across every
// registered model right now: each entry keeps its newest Retain
// versions plus whichever version is live; everything older is deleted
// from memory and the store, leaving permanent holes (version numbers
// are never reused). With Retain <= 0 it is a no-op. Deploy and Swap
// run the same pass automatically on the model they deploy; this
// method exists for the admin endpoint and for catching up after a
// Retain change.
func (s *Service) GC() ([]GCResult, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	entries := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	results := make([]GCResult, 0, len(entries))
	var firstErr error
	for _, e := range entries {
		e.mu.Lock()
		res, err := s.gcEntryLocked(e)
		e.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results = append(results, res)
	}
	return results, firstErr
}

// gcEntryLocked prunes one entry to the retention policy. Caller holds
// e.mu. The in-memory version is dropped only after the store delete
// succeeds, so the store never references a model the registry cannot
// also serve; a failed store delete leaves that version fully intact
// for the next pass.
func (s *Service) gcEntryLocked(e *entry) (GCResult, error) {
	res := GCResult{Name: e.name, Retained: e.available()}
	retain := s.opts.Retain
	if retain <= 0 {
		return res, nil
	}
	liveV := 0
	if lp := e.live.Load(); lp != nil {
		liveV = lp.version
	}
	kept := 0
	var firstErr error
	for v := len(e.versions); v >= 1; v-- {
		if e.versions[v-1] == nil {
			continue
		}
		if v == liveV || kept < retain {
			kept++
			continue
		}
		if s.opts.Store != nil {
			if err := s.opts.Store.Delete(artifactKey(e.name, v)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("service: gc %q v%d: %w", e.name, v, err)
				}
				kept++ // still present everywhere; retry next pass
				continue
			}
		}
		e.versions[v-1] = nil
		res.Removed = append(res.Removed, v)
	}
	res.Retained = e.available()
	sort.Ints(res.Removed)
	return res, firstErr
}

// Store key schema. Artifact blobs live under "v<version>/<name>",
// live-deployment markers under "live/<name>"; the version segment is
// numeric, so the two namespaces cannot collide whatever the model
// name contains.
func artifactKey(name string, version int) string {
	return "v" + strconv.Itoa(version) + "/" + name
}

func liveKey(name string) string { return "live/" + name }

// parseKey classifies a store key: an artifact key yields (name,
// version, true, true); a live marker yields (name, 0, false, true).
// Foreign keys report ok == false and are ignored by WarmBoot.
func parseKey(key string) (name string, version int, isArtifact, ok bool) {
	head, rest, found := strings.Cut(key, "/")
	if !found || rest == "" {
		return "", 0, false, false
	}
	if head == "live" {
		return rest, 0, false, true
	}
	if len(head) < 2 || head[0] != 'v' {
		return "", 0, false, false
	}
	v, err := strconv.Atoi(head[1:])
	if err != nil || v <= 0 {
		return "", 0, false, false
	}
	return rest, v, true, true
}

// liveRecord is the persisted live-deployment marker: which version
// serves, under which per-deployment options, at which deployment
// generation (the shared-store tie-breaker; see entry.gen).
type liveRecord struct {
	Version int   `json:"version"`
	Gen     int64 `json:"gen,omitempty"`
	DeployOptions
}

// quarantinePrefix parks blobs the boot path classified as damaged.
// Quarantined keys are invisible to parseKey (so later boots ignore
// them) but preserved verbatim for offline forensics.
const quarantinePrefix = "quarantine/"

// BootReport is WarmBoot's account of what it found in the store:
// the restored live deployments, how many artifacts loaded cleanly,
// how many were quarantined as damaged, how many store keys were
// skipped as foreign, and a human-readable incident log. It is served
// in the /v1/healthz body so a degraded boot is observable, not just
// survivable.
type BootReport struct {
	// Deployed lists the live deployments restored (or reached by
	// fallback) during the boot.
	Deployed []ModelInfo `json:"deployed,omitempty"`
	// Loaded counts artifacts that decoded cleanly and were installed.
	Loaded int `json:"loaded"`
	// Quarantined counts blobs (artifacts or live markers) moved to the
	// quarantine/ prefix this boot: corrupt, truncated, or mislabeled.
	Quarantined int `json:"quarantined"`
	// Skipped counts store keys ignored as not ours (foreign files in a
	// store directory, previously quarantined blobs).
	Skipped int `json:"skipped"`
	// Degraded reports whether any quarantine, fallback, or skipped
	// deployment happened — the "boot succeeded but a human should
	// look" bit.
	Degraded bool `json:"degraded,omitempty"`
	// Details is the incident log: one line per quarantine, live-marker
	// fallback, or abandoned deployment.
	Details []string `json:"details,omitempty"`
}

// detailf appends one incident line.
func (r *BootReport) detailf(format string, args ...any) {
	r.Degraded = true
	r.Details = append(r.Details, fmt.Sprintf(format, args...))
}

// BootReport returns the report of the completed WarmBoot, or nil if
// no warm boot has run.
func (s *Service) BootReport() *BootReport {
	return s.boot.Load()
}

// quarantine moves a damaged blob under the quarantine prefix (best
// effort: on failure the blob stays put and the next boot retries).
func (s *Service) quarantine(rep *BootReport, key string, data []byte, why error) {
	rep.Quarantined++
	rep.detailf("quarantined %q: %v", key, why)
	for _, incident := range quarantineBlob(s.opts.Store, key, data) {
		rep.detailf("%s", incident)
	}
}

// quarantineBlob parks one damaged blob under the quarantine prefix,
// returning incident lines for anything that went wrong doing so (the
// blob then stays put and the next boot or sync retries). Shared by
// WarmBoot and SyncStore so mid-sync damage gets exactly the boot
// path's semantics.
func quarantineBlob(store Store, key string, data []byte) []string {
	if err := store.Put(quarantinePrefix+key, data); err != nil {
		return []string{fmt.Sprintf("quarantine move of %q failed, blob left in place: %v", key, err)}
	}
	if err := store.Delete(key); err != nil {
		return []string{fmt.Sprintf("quarantine delete of original %q failed: %v", key, err)}
	}
	return nil
}

// WarmBoot replays the configured store into an empty registry: every
// persisted version is decoded (checksums verified) and reinstalled
// under its original version number, and each model's recorded live
// deployment is restarted with its recorded options. On success the
// service reports Ready. Models never deployed stay registered but
// cold, exactly as before the restart; rollback to any persisted
// version keeps working because all intact versions are reloaded, not
// just the live ones.
//
// WarmBoot survives damage instead of dying of it. A corrupt,
// truncated, or mislabeled artifact is moved under the quarantine/
// prefix and its version becomes a permanent hole; the rest of the
// model's history still loads. A corrupt live marker — or one pointing
// at a quarantined version — falls back to the model's highest intact
// version. Only infrastructure failures (the store itself erroring)
// abort the boot; data damage degrades it, and the BootReport says
// exactly how.
//
// Without a store WarmBoot only flips the service ready. It must run
// before the first Register (the registry must be empty so persisted
// version numbers cannot collide with fresh ones).
func (s *Service) WarmBoot() (*BootReport, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if len(s.entries) != 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: warm boot requires an empty registry (%d entries present)", len(s.entries))
	}
	s.mu.Unlock()
	rep := &BootReport{}
	if s.opts.Store == nil {
		s.ready.Store(true)
		s.boot.Store(rep)
		return rep, nil
	}
	keys, err := s.opts.Store.List()
	if err != nil {
		return nil, fmt.Errorf("service: warm boot: %w", err)
	}
	versions := make(map[string][]int)
	live := make(map[string]liveRecord)
	corruptMarker := make(map[string]bool)
	for _, key := range keys {
		if strings.HasPrefix(key, quarantinePrefix) {
			rep.Skipped++ // parked by an earlier boot; not ours to replay
			continue
		}
		name, v, isArtifact, ok := parseKey(key)
		if !ok {
			rep.Skipped++ // not one of ours (README in the store dir, ...)
			continue
		}
		if !isArtifact {
			data, err := s.opts.Store.Get(key)
			if err != nil {
				return nil, fmt.Errorf("service: warm boot: %w", err)
			}
			var rec liveRecord
			if err := json.Unmarshal(data, &rec); err != nil || rec.Version <= 0 {
				if err == nil {
					err = fmt.Errorf("live marker names version %d", rec.Version)
				}
				// The marker is damaged but the artifacts may be fine:
				// quarantine it and fall back to the highest intact
				// version below.
				s.quarantine(rep, key, data, err)
				corruptMarker[name] = true
				continue
			}
			live[name] = rec
			continue
		}
		versions[name] = append(versions[name], v)
	}

	// Rebuild each entry's version history. Versions that fail to
	// decode are quarantined and leave holes; a model with no intact
	// version at all is dropped (reported, not fatal).
	names := make([]string, 0, len(versions))
	for name := range versions {
		names = append(names, name)
	}
	sort.Strings(names)
	installed := make(map[string]bool)
	for _, name := range names {
		vs := versions[name]
		sort.Ints(vs)
		maxV := vs[len(vs)-1]
		e := &entry{name: name, versions: make([]*core.Model, maxV)}
		for _, v := range vs {
			key := artifactKey(name, v)
			data, err := s.opts.Store.Get(key)
			if err != nil {
				return nil, fmt.Errorf("service: warm boot: %w", err)
			}
			m, err := artifact.Decode(data)
			if err != nil {
				s.quarantine(rep, key, data, err)
				continue
			}
			if m.Version != v {
				s.quarantine(rep, key, data, fmt.Errorf("artifact claims version %d", m.Version))
				continue
			}
			if e.kind == "" {
				e.task, e.kind = m.Task, m.Name
			} else if m.Task != e.task || m.Name != e.kind {
				s.quarantine(rep, key, data, fmt.Errorf("%s/%s does not match entry %s/%s",
					m.Name, m.Task, e.kind, e.task))
				continue
			}
			e.versions[v-1] = m
			rep.Loaded++
		}
		if e.available() == 0 {
			rep.detailf("model %q has no intact versions; not registered", name)
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		s.entries[name] = e
		s.mu.Unlock()
		installed[name] = true
	}

	// Restart the recorded live deployments, falling back to the
	// highest intact version when the recorded one (or the marker
	// itself) did not survive. A model whose artifacts are all gone is
	// reported and skipped — a degraded node that serves its intact
	// models beats a dead one.
	markerNames := make([]string, 0, len(live)+len(corruptMarker))
	for name := range live {
		markerNames = append(markerNames, name)
	}
	for name := range corruptMarker {
		markerNames = append(markerNames, name)
	}
	sort.Strings(markerNames)
	for _, name := range markerNames {
		if !installed[name] {
			rep.detailf("live marker for %q but no intact artifacts; deployment lost", name)
			continue
		}
		rec, hasRec := live[name]
		target, dopts := rec.Version, rec.DeployOptions
		e, err := s.entry(name)
		if err != nil {
			return nil, fmt.Errorf("service: warm boot: %w", err)
		}
		e.mu.Lock()
		intact := target >= 1 && target <= len(e.versions) && e.versions[target-1] != nil
		fallback := e.latest()
		e.mu.Unlock()
		if !hasRec {
			target, dopts = fallback, DeployOptions{}
			rep.detailf("live marker for %q was damaged; deploying highest intact version v%d", name, target)
		} else if !intact {
			rep.detailf("live version v%d of %q is not intact; falling back to v%d", target, name, fallback)
			target, dopts = fallback, DeployOptions{}
		} else {
			// Restoring an intact marker must not mint a new
			// generation: a rebooting node re-adopts the cluster's
			// current deployment rather than claiming a newer one. The
			// Deploy below bumps gen by one, so seed it one below the
			// marker's and the rewrite is generation-idempotent.
			// Fallback deploys (the branches above) are genuinely new
			// local decisions and keep the fresh generation Deploy
			// assigns.
			e.mu.Lock()
			e.gen = rec.Gen - 1
			e.mu.Unlock()
		}
		info, err := s.Deploy(name, target, dopts)
		if err != nil {
			// Deploying an intact version should only fail on store
			// trouble (the live-marker write); leave the model cold and
			// keep booting.
			rep.detailf("redeploy %q v%d failed: %v", name, target, err)
			continue
		}
		rep.Deployed = append(rep.Deployed, info)
	}
	s.ready.Store(true)
	s.boot.Store(rep)
	return rep, nil
}

// entry looks a registry slot up.
func (s *Service) entry(name string) (*entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// info builds a ModelInfo for the given version (0 = describe the
// entry as a whole). Callers hold e.mu or tolerate a racy Versions.
func (e *entry) info(version int) ModelInfo {
	liveV := 0
	var deploy DeployOptions
	if lp := e.live.Load(); lp != nil {
		liveV = lp.version
		deploy = lp.opts
	}
	if version == 0 {
		version = len(e.versions)
	}
	return ModelInfo{
		Name: e.name, Model: e.kind, Task: e.task.String(),
		Classification: e.task.IsClassification(),
		Version:        version, Versions: len(e.versions), Available: e.available(),
		Live: liveV == version && liveV != 0, LiveVersion: liveV,
		Deploy: deploy,
	}
}

// argmax matches core.Model.PredictClass's tie-breaking (first max).
func argmax(p []float64) int {
	best := 0
	for c := range p {
		if p[c] > p[best] {
			best = c
		}
	}
	return best
}
