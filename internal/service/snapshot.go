package service

import "repro/internal/serve"

// StatsSnapshot is the single wire shape for one model's service
// metrics, shared verbatim by the HTTP handler (GET /v1/stats) and the
// binary wire transport's stats reply. Both transports marshal exactly
// this struct, so a field added to the serving layer's metrics
// (EffectiveBatch, Widths, Panics, Rebuilds, ...) can never be present
// on one transport and missing on the other.
type StatsSnapshot struct {
	Info      ModelInfo   `json:"info"`
	Completed uint64      `json:"completed"`
	Rejected  uint64      `json:"rejected"`
	Canceled  uint64      `json:"canceled"`
	P50       string      `json:"p50"`
	P99       string      `json:"p99"`
	Stats     serve.Stats `json:"stats"`
	// Online is the online-learning pipeline's state: service-wide
	// ingest counters plus this model's trainer progress. Present only
	// when the service has an ingest log or an online pipeline
	// attached.
	Online *OnlineStats `json:"online,omitempty"`
}

// OnlineStats is the online-learning pipeline's state as surfaced per
// model through /v1/stats and the wire stats reply. The ingest
// counters (Sampled, Observed, Dropped) are service-wide; the rest is
// the named model's pipeline progress, supplied by the registered
// provider (SetOnlineStats).
type OnlineStats struct {
	// Sampled counts predicts sampled into the ingest log; Observed
	// counts ground-truth outcomes logged via Observe; Dropped counts
	// append failures. All three are service-wide.
	Sampled  uint64 `json:"sampled"`
	Observed uint64 `json:"observed"`
	Dropped  uint64 `json:"dropped,omitempty"`
	// Consumed counts observed records the model's trainer has read;
	// Windows counts fine-tune windows completed; Candidates counts
	// versions fine-tuned and registered; Swaps, Rollbacks, and
	// Rejected count the canary gate's decisions.
	Consumed   uint64 `json:"consumed,omitempty"`
	Windows    uint64 `json:"windows,omitempty"`
	Candidates uint64 `json:"candidates,omitempty"`
	Swaps      uint64 `json:"swaps,omitempty"`
	Rollbacks  uint64 `json:"rollbacks,omitempty"`
	Rejected   uint64 `json:"rejected,omitempty"`
	// LastDecision is the gate's most recent decision line for this
	// model ("" until the first window completes).
	LastDecision string `json:"last_decision,omitempty"`
}

// IngestRequest is the feedback body shared by POST /v1/ingest and the
// wire transport's MsgIngest payload: a served statement and its
// observed ground-truth outcome (class for classification tasks, value
// in raw units for regression tasks).
type IngestRequest struct {
	Model     string  `json:"model"`
	Statement string  `json:"statement"`
	Class     int     `json:"class,omitempty"`
	Value     float64 `json:"value,omitempty"`
}

// IngestResponse is the feedback acknowledgment shared by both
// transports.
type IngestResponse struct {
	OK bool `json:"ok"`
}

// StatsSnapshot assembles the shared stats shape for name's live
// deployment.
func (s *Service) StatsSnapshot(name string) (StatsSnapshot, error) {
	st, info, err := s.Stats(name)
	if err != nil {
		return StatsSnapshot{}, err
	}
	snap := StatsSnapshot{
		Info: info, Completed: st.Completed, Rejected: st.Rejected, Canceled: st.Canceled,
		P50: st.P50.String(), P99: st.P99.String(), Stats: st,
	}
	provider := s.onlineStats.Load()
	if s.opts.Ingest != nil || provider != nil {
		online := OnlineStats{
			Sampled:  s.ingestSampled.Load(),
			Observed: s.ingestObserved.Load(),
			Dropped:  s.ingestDropped.Load(),
		}
		if provider != nil {
			if ps, ok := (*provider)(name); ok {
				online.Consumed = ps.Consumed
				online.Windows = ps.Windows
				online.Candidates = ps.Candidates
				online.Swaps = ps.Swaps
				online.Rollbacks = ps.Rollbacks
				online.Rejected = ps.Rejected
				online.LastDecision = ps.LastDecision
			}
		}
		snap.Online = &online
	}
	return snap, nil
}

// DeployRequest is the deploy body shared by POST /v1/deploy and the
// wire transport's MsgDeploy payload: the model, an optional version
// (0 = latest), and per-deployment pool overrides.
type DeployRequest struct {
	Model   string `json:"model"`
	Version int    `json:"version,omitempty"`
	DeployOptions
}

// ValidateDeploy checks deployment overrides against the service's
// pool template without deploying, so transports can reject a bad
// request body up front (HTTP and wire both map this onto 400).
func (s *Service) ValidateDeploy(o DeployOptions) error {
	_, err := o.apply(s.opts.Serve)
	return err
}

// Health is the single readiness shape shared by GET /v1/healthz and
// the wire transport's healthz reply: the status string ("warming up",
// "ok", or "degraded") plus the warm boot's report once one has run.
type Health struct {
	Status string      `json:"status"`
	Boot   *BootReport `json:"boot,omitempty"`
}

// Health reports the service's readiness state and whether it is ready
// to take traffic (the HTTP handler maps ready=false onto a 503, the
// wire server onto a typed unavailable error).
func (s *Service) Health() (Health, bool) {
	if !s.Ready() {
		return Health{Status: "warming up", Boot: s.BootReport()}, false
	}
	h := Health{Status: "ok", Boot: s.BootReport()}
	if h.Boot != nil && h.Boot.Degraded {
		h.Status = "degraded"
	}
	return h, true
}
