package service

import "repro/internal/serve"

// StatsSnapshot is the single wire shape for one model's service
// metrics, shared verbatim by the HTTP handler (GET /v1/stats) and the
// binary wire transport's stats reply. Both transports marshal exactly
// this struct, so a field added to the serving layer's metrics
// (EffectiveBatch, Widths, Panics, Rebuilds, ...) can never be present
// on one transport and missing on the other.
type StatsSnapshot struct {
	Info      ModelInfo   `json:"info"`
	Completed uint64      `json:"completed"`
	Rejected  uint64      `json:"rejected"`
	Canceled  uint64      `json:"canceled"`
	P50       string      `json:"p50"`
	P99       string      `json:"p99"`
	Stats     serve.Stats `json:"stats"`
}

// StatsSnapshot assembles the shared stats shape for name's live
// deployment.
func (s *Service) StatsSnapshot(name string) (StatsSnapshot, error) {
	st, info, err := s.Stats(name)
	if err != nil {
		return StatsSnapshot{}, err
	}
	return StatsSnapshot{
		Info: info, Completed: st.Completed, Rejected: st.Rejected, Canceled: st.Canceled,
		P50: st.P50.String(), P99: st.P99.String(), Stats: st,
	}, nil
}

// DeployRequest is the deploy body shared by POST /v1/deploy and the
// wire transport's MsgDeploy payload: the model, an optional version
// (0 = latest), and per-deployment pool overrides.
type DeployRequest struct {
	Model   string `json:"model"`
	Version int    `json:"version,omitempty"`
	DeployOptions
}

// ValidateDeploy checks deployment overrides against the service's
// pool template without deploying, so transports can reject a bad
// request body up front (HTTP and wire both map this onto 400).
func (s *Service) ValidateDeploy(o DeployOptions) error {
	_, err := o.apply(s.opts.Serve)
	return err
}

// Health is the single readiness shape shared by GET /v1/healthz and
// the wire transport's healthz reply: the status string ("warming up",
// "ok", or "degraded") plus the warm boot's report once one has run.
type Health struct {
	Status string      `json:"status"`
	Boot   *BootReport `json:"boot,omitempty"`
}

// Health reports the service's readiness state and whether it is ready
// to take traffic (the HTTP handler maps ready=false onto a 503, the
// wire server onto a typed unavailable error).
func (s *Service) Health() (Health, bool) {
	if !s.Ready() {
		return Health{Status: "warming up", Boot: s.BootReport()}, false
	}
	h := Health{Status: "ok", Boot: s.BootReport()}
	if h.Boot != nil && h.Boot.Degraded {
		h.Status = "degraded"
	}
	return h, true
}
