package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// TestRetentionOnDeploy pins the GC contract: with Retain set, every
// deploy prunes the deployed model down to the newest Retain versions
// plus the live one — from memory AND the store — leaving permanent
// version holes that can no longer be deployed, while everything
// retained still serves and rolls back.
func TestRetentionOnDeploy(t *testing.T) {
	store := NewMemStore()
	s := New(Options{Serve: serve.Options{Replicas: 1}, Store: store, Retain: 2})
	defer s.Close()
	if _, err := s.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	for i := 0; i < 5; i++ {
		if _, err := s.Swap("errors", m); err != nil {
			t.Fatal(err)
		}
	}
	// Retain=2 counts the live version among the newest two here, so
	// the survivors are {v5 (live), v4}; v3 and older are pruned.
	models := s.Models()
	if len(models) != 1 || models[0].Versions != 5 || models[0].Available != 2 {
		t.Fatalf("models after GC = %+v, want versions=5 available=2", models)
	}
	keys, _ := store.List()
	var artifacts []string
	for _, k := range keys {
		if strings.HasPrefix(k, "v") {
			artifacts = append(artifacts, k)
		}
	}
	wantKept := map[string]bool{artifactKey("errors", 4): true, artifactKey("errors", 5): true}
	if len(artifacts) != len(wantKept) {
		t.Fatalf("store artifacts after GC = %v, want exactly %v", artifacts, wantKept)
	}
	for _, k := range artifacts {
		if !wantKept[k] {
			t.Fatalf("store kept pruned artifact %q", k)
		}
	}
	if _, err := s.Deploy("errors", 2); err == nil {
		t.Fatal("Deploy resurrected a GC-pruned version")
	}
	// Retained non-live version still deploys (rollback within policy).
	if info, err := s.Deploy("errors", 4); err != nil || info.LiveVersion != 4 {
		t.Fatalf("Deploy(4) = %+v, %v", info, err)
	}
	if _, err := s.Predict(context.Background(), "errors", testStatements(1)[0]); err != nil {
		t.Fatalf("predict on retained rollback: %v", err)
	}
	// Version numbers are never reused after pruning.
	info, err := s.Swap("errors", m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 6 {
		t.Fatalf("post-GC Swap produced v%d, want v6", info.Version)
	}
}

// TestGCOnDemand: with Retain unset at deploy time nothing is pruned;
// raising Retain and calling GC() catches the registry up, and the live
// version survives even when it is old.
func TestGCOnDemand(t *testing.T) {
	store := NewMemStore()
	s := New(Options{Serve: serve.Options{Replicas: 1}, Store: store})
	defer s.Close()
	if _, err := s.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	for i := 0; i < 4; i++ {
		if _, err := s.Swap("errors", m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Deploy("errors", 1); err != nil { // old version live
		t.Fatal(err)
	}
	if results, err := s.GC(); err != nil || len(results[0].Removed) != 0 {
		t.Fatalf("Retain=0 GC pruned %+v, %v", results, err)
	}
	s.opts.Retain = 1
	results, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	// Keep v4 (newest 1) + v1 (live); prune v2, v3.
	if len(results) != 1 || results[0].Name != "errors" || results[0].Retained != 2 {
		t.Fatalf("GC results = %+v, want errors retained=2", results)
	}
	if got := results[0].Removed; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("GC removed %v, want [2 3]", got)
	}
	if pr, err := s.Predict(context.Background(), "errors", testStatements(1)[0]); err != nil || pr.Version != 1 {
		t.Fatalf("live old version after GC: %+v, %v", pr, err)
	}
	if _, err := store.Get(artifactKey("errors", 1)); err != nil {
		t.Fatal("GC deleted the live version's artifact")
	}
}

// TestGCStoreDeleteFailure: a store that refuses deletes must not make
// the registry forget versions the store still holds — the failed
// version stays deployable and the next pass retries.
func TestGCStoreDeleteFailure(t *testing.T) {
	inner := NewMemStore()
	fs := &failingDeleteStore{Store: inner}
	s := New(Options{Serve: serve.Options{Replicas: 1}, Store: fs, Retain: 1})
	defer s.Close()
	if _, err := s.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	fs.fail = true
	for i := 0; i < 3; i++ {
		if _, err := s.Swap("errors", m); err != nil {
			t.Fatal(err)
		}
	}
	// Deletes all failed: every version must still be available.
	if models := s.Models(); models[0].Available != 3 {
		t.Fatalf("failed deletes lost versions: %+v", models)
	}
	if _, err := s.GC(); err == nil {
		t.Fatal("GC swallowed the store delete failure")
	}
	fs.fail = false
	results, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	// Retain=1 with v3 live counts the live version as the one kept:
	// the recovered pass prunes both stragglers.
	if got := results[0].Removed; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("recovered GC removed %v, want [1 2]", got)
	}
}

// failingDeleteStore fails every Delete while fail is set.
type failingDeleteStore struct {
	Store
	fail bool
}

func (s *failingDeleteStore) Delete(key string) error {
	if s.fail {
		return errors.New("synthetic delete failure")
	}
	return s.Store.Delete(key)
}
