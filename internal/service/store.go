package service

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNoKey is returned by Store.Get for a key that was never Put (or
// was Deleted).
var ErrNoKey = errors.New("service: store key not found")

// Store is the registry's pluggable persistence: an opaque blob store
// keyed by strings. The Service writes one blob per registered model
// version (the encoded artifact) plus one small live-deployment marker
// per model name, and replays them on WarmBoot, so a restarted process
// serves bit-identical predictions without retraining.
//
// Implementations must be safe for concurrent use and durable to the
// degree they claim: MemStore survives nothing (tests, ephemeral
// registries), DirStore survives process restarts. Put must be
// atomic — a reader never observes a half-written blob.
type Store interface {
	// Put stores data under key, replacing any previous value.
	Put(key string, data []byte) error
	// Get returns the value for key, or an error wrapping ErrNoKey.
	Get(key string) ([]byte, error)
	// List returns every stored key, in unspecified order.
	List() ([]string, error)
	// Delete removes key. Deleting an absent key is a no-op.
	Delete(key string) error
}

// MemStore is an in-memory Store: the registry behaves identically to
// a disk-backed one (same code paths, same keys) but persists only for
// the life of the process. Useful in tests and as the default when no
// durability is needed.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoKey, key)
	}
	return append([]byte(nil), data...), nil
}

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// DirStore is a directory-backed Store: one file per key, with keys
// URL-escaped into flat file names (no key can escape the directory or
// collide with another). Writes go through a same-directory temp file
// and rename, so a crash mid-Put never leaves a torn blob behind —
// the property the artifact checksum then double-checks on read.
//
// Opening a store recovers from crashes: temp files a torn rename left
// behind are swept, so they can neither accumulate nor ever surface
// through List. Put retries the whole write sequence once, absorbing
// transient failures (a momentarily flaky disk) without bothering the
// registry layer.
type DirStore struct {
	dir string

	// Write-path seams, swappable by fault-injection tests; production
	// stores use the os functions.
	createTemp func(dir, pattern string) (*os.File, error)
	rename     func(oldpath, newpath string) error
}

// NewDirStore creates (if needed) and opens a directory-backed store,
// sweeping any temp files a previous crash left mid-rename.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store dir: %w", err)
	}
	s := &DirStore{dir: dir, createTemp: os.CreateTemp, rename: os.Rename}
	if err := s.sweepTemps(); err != nil {
		return nil, fmt.Errorf("service: store dir: sweep temp files: %w", err)
	}
	return s, nil
}

// sweepTemps removes leftover in-flight temp files. Every completed
// Put has already renamed its temp away, so anything still carrying
// the prefix is debris from a crash mid-write and its final blob was
// never committed — deleting it loses nothing.
func (s *DirStore) sweepTemps() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasPrefix(ent.Name(), tmpPrefix) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, ent.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

// tmpPrefix marks in-flight temp files so List never reports them.
const tmpPrefix = ".tmp-"

// Put implements Store (atomic and durable: temp file, fsync, rename,
// directory fsync — so a post-Put crash can neither tear the blob nor
// lose the rename). A failed write sequence is retried once from the
// top, so a transient fault costs a retry instead of a failed deploy;
// a persistent fault still surfaces.
func (s *DirStore) Put(key string, data []byte) error {
	err := s.putOnce(key, data)
	if err != nil {
		err = s.putOnce(key, data)
	}
	return err
}

// putOnce is one temp-write-fsync-rename attempt.
func (s *DirStore) putOnce(key string, data []byte) error {
	tmp, err := s.createTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush the data blocks before the rename is journaled: without
	// this, a power loss can leave the final name pointing at a torn
	// file, which would fail the next WarmBoot's checksum pass.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := s.rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return s.syncDir()
}

// syncDir fsyncs the store directory so a completed rename survives a
// crash.
func (s *DirStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Store.
func (s *DirStore) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNoKey, key)
	}
	return data, err
}

// List implements Store.
func (s *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(entries))
	for _, ent := range entries {
		if ent.IsDir() || strings.HasPrefix(ent.Name(), tmpPrefix) {
			continue
		}
		key, err := url.PathUnescape(ent.Name())
		if err != nil {
			continue // foreign file; not one of ours
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *DirStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, url.PathEscape(key))
}
