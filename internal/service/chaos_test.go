package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve"
)

// The chaos suite drives the whole registry stack — store, boot,
// registry, pools — through injected failures and crash debris, and
// asserts the survival contract: no acked deploy is ever lost, no
// prediction ever mixes versions, damage degrades a node instead of
// killing it, and the warm path stays allocation-free through it all.
// Every test runs under -race in CI (the smoke step runs exactly
// `-run TestChaos`).

// TestChaosCorruptionAcrossRestart is the headline acceptance scenario:
// three deployed models go down in a "crash", one of the three
// artifacts rots on disk, and the restarted node must come up ready —
// healthz 200, the two intact models serving bit-identical predictions,
// the corrupt one quarantined and reported.
func TestChaosCorruptionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Serve: serve.Options{Replicas: 1}, Store: store})
	if _, err := s1.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	names := []string{"chaos-a", "chaos-b", "chaos-c"}
	for _, name := range names {
		if _, err := s1.Swap(name, m); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	stmts := testStatements(8)
	want := make(map[string][][]float64)
	for _, name := range names {
		probs := make([][]float64, len(stmts))
		for i, stmt := range stmts {
			pr, err := s1.Predict(ctx, name, stmt)
			if err != nil {
				t.Fatal(err)
			}
			probs[i] = pr.Probs
		}
		want[name] = probs
	}
	s1.Close() // the "crash" (all state is already durable)

	// Bit rot hits chaos-c's only artifact while the process is down.
	if err := faults.Corrupt(store, artifactKey("chaos-c", 1)); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Serve: serve.Options{Replicas: 1}, Store: store2})
	defer s2.Close()
	rep, err := s2.WarmBoot()
	if err != nil {
		t.Fatalf("corruption killed the boot: %v", err)
	}
	if !s2.Ready() {
		t.Fatal("node did not reach ready")
	}
	if rep.Quarantined != 1 || !rep.Degraded || rep.Loaded != 2 {
		t.Fatalf("boot report = %+v, want quarantined=1 loaded=2 degraded", rep)
	}
	if len(rep.Deployed) != 2 {
		t.Fatalf("deployed %d models, want the 2 intact ones", len(rep.Deployed))
	}
	for _, name := range []string{"chaos-a", "chaos-b"} {
		for i, stmt := range stmts {
			pr, err := s2.Predict(ctx, name, stmt)
			if err != nil {
				t.Fatalf("%s after degraded boot: %v", name, err)
			}
			if pr.Version != 1 {
				t.Fatalf("%s serves v%d, want v1", name, pr.Version)
			}
			for c := range pr.Probs {
				if pr.Probs[c] != want[name][i][c] {
					t.Fatalf("%s predictions drifted across the degraded restart", name)
				}
			}
		}
	}
	if _, err := s2.Predict(ctx, "chaos-c", stmts[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quarantined-only model err = %v, want ErrNotFound", err)
	}

	// The healthz body carries the whole story: 200, degraded, counts.
	srv := httptest.NewServer(NewHandler(s2))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	var hz struct {
		Status string      `json:"status"`
		Boot   *BootReport `json:"boot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Boot == nil || hz.Boot.Quarantined != 1 {
		t.Fatalf("healthz body = %+v, want degraded with quarantined=1", hz)
	}

	// The warm predict path is still allocation-free after all of it.
	e, err := s2.entry("chaos-a")
	if err != nil {
		t.Fatal(err)
	}
	pred := e.live.Load().pred
	dst := make([]float64, 0, 8)
	for i := 0; i < 8; i++ {
		if dst, err = pred.ProbsIntoCtx(ctx, stmts[0], dst); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		dst, _ = pred.ProbsIntoCtx(ctx, stmts[0], dst)
	}); allocs != 0 {
		t.Errorf("post-chaos warm predict allocs/op = %v, want 0", allocs)
	}
}

// TestChaosKillRestartMidDeploy kills a deploy between its artifact
// write and its live-marker write (injected marker-Put failure), drops
// crash debris (a torn rename temp) into the store directory, and
// restarts. The contract: the failed deploy was never acked, so the
// node must come back serving exactly the last acked deployment — and
// the unacked version's artifact, which did persist, stays available
// for an explicit deploy.
func TestChaosKillRestartMidDeploy(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(42)
	fstore := faults.NewStore(inner, inj)
	s1 := New(Options{Serve: serve.Options{Replicas: 1}, Store: fstore})
	if _, err := s1.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	if _, err := s1.Swap("errors", m); err != nil { // acked: v1 live
		t.Fatal(err)
	}
	ctx := context.Background()
	stmts := testStatements(6)
	want := make([][]float64, len(stmts))
	for i, stmt := range stmts {
		pr, err := s1.Predict(ctx, "errors", stmt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pr.Probs
	}

	// The "kill": the next live-marker write fails, so the v2 Swap's
	// Register lands but its Deploy does not — the caller gets an error,
	// nothing was acked.
	inj.Add(faults.Rule{Op: faults.OpPut, KeyPrefix: "live/", Count: 1})
	if _, err := s1.Swap("errors", m); err == nil {
		t.Fatal("Swap acked despite the marker write failing")
	}
	if pr, err := s1.Predict(ctx, "errors", stmts[0]); err != nil || pr.Version != 1 {
		t.Fatalf("failed deploy disturbed the live pool: %+v, %v", pr, err)
	}
	s1.Close()

	// Crash debris: a rename temp file a dying process left behind.
	if _, err := faults.TornTemp(dir, []byte("half a blob")); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirStore(dir) // sweeps the temp
	if err != nil {
		t.Fatal(err)
	}
	keys, err := store2.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if strings.Contains(k, ".tmp-") {
			t.Fatalf("torn temp surfaced from List: %q", k)
		}
	}
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), ".tmp-") {
			t.Fatalf("torn temp %q survived the sweep", ent.Name())
		}
	}
	s2 := New(Options{Serve: serve.Options{Replicas: 1}, Store: store2})
	defer s2.Close()
	rep, err := s2.WarmBoot()
	if err != nil {
		t.Fatal(err)
	}
	// v1 and v2 artifacts both persisted; only v1 was ever acked live.
	if len(rep.Deployed) != 1 || rep.Deployed[0].LiveVersion != 1 || rep.Deployed[0].Versions != 2 {
		t.Fatalf("restart deployed %+v, want v1 live of 2 versions", rep.Deployed)
	}
	for i, stmt := range stmts {
		pr, err := s2.Predict(ctx, "errors", stmt)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Version != 1 {
			t.Fatalf("prediction came from v%d, want the acked v1", pr.Version)
		}
		for c := range pr.Probs {
			if pr.Probs[c] != want[i][c] {
				t.Fatal("acked deployment's predictions drifted across restart")
			}
		}
	}
	// The unacked-but-persisted v2 deploys cleanly on request.
	if info, err := s2.Deploy("errors", 2); err != nil || info.LiveVersion != 2 {
		t.Fatalf("explicit deploy of persisted v2 = %+v, %v", info, err)
	}
}

// TestChaosPartialWriteAtBoot: a torn artifact write (the on-disk state
// a crash mid-Put leaves when the rename still happened) must fail the
// checksum on the next boot and be quarantined, never served.
func TestChaosPartialWriteAtBoot(t *testing.T) {
	mem := NewMemStore()
	inj := faults.NewInjector(7)
	fstore := faults.NewStore(mem, inj)
	s1 := New(Options{Serve: serve.Options{Replicas: 1}, Store: fstore})
	if _, err := s1.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	if _, err := s1.Swap("errors", m); err != nil {
		t.Fatal(err)
	}
	// v2's artifact write tears: half the payload lands, caller errors.
	inj.Add(faults.Rule{Op: faults.OpPut, KeyPrefix: "v2/", Count: 1, Partial: true})
	if _, err := s1.Register("errors", m); err == nil {
		t.Fatal("Register acked a torn write")
	}
	s1.Close()

	s2 := New(Options{Serve: serve.Options{Replicas: 1}, Store: mem})
	defer s2.Close()
	rep, err := s2.WarmBoot()
	if err != nil {
		t.Fatalf("torn artifact killed the boot: %v", err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("boot report = %+v, want the torn v2 quarantined", rep)
	}
	if len(rep.Deployed) != 1 || rep.Deployed[0].LiveVersion != 1 {
		t.Fatalf("restart deployed %+v, want v1 live", rep.Deployed)
	}
}

// TestChaosRegisterStoreErrors: injected disk errors during Register
// must fail the call with the store and registry still agreeing — no
// orphaned versions on either side — and a retry must succeed with the
// version number the failure never burned.
func TestChaosRegisterStoreErrors(t *testing.T) {
	mem := NewMemStore()
	inj := faults.NewInjector(99)
	inj.Add(faults.Rule{Op: faults.OpPut, KeyPrefix: "v", Count: 2})
	fstore := faults.NewStore(mem, inj)
	s := New(Options{Serve: serve.Options{Replicas: 1}, Store: fstore})
	defer s.Close()
	if _, err := s.WarmBoot(); err != nil {
		t.Fatal(err)
	}
	m := trainCCNN(t, core.ErrorClassification)
	for i := 0; i < 2; i++ {
		if _, err := s.Register("errors", m); !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("Register with failing store err = %v, want ErrInjected", err)
		}
		if models := s.Models(); len(models) != 0 && models[0].Available != 0 {
			t.Fatalf("failed Register left registry state: %+v", models)
		}
		if keys, _ := mem.List(); len(keys) != 0 {
			t.Fatalf("failed Register left store state: %v", keys)
		}
	}
	info, err := s.Register("errors", m)
	if err != nil {
		t.Fatalf("Register after faults cleared: %v", err)
	}
	if info.Version != 1 {
		t.Fatalf("recovered Register got v%d, want v1 (failures burn no numbers)", info.Version)
	}
	if _, err := mem.Get(artifactKey("errors", 1)); err != nil {
		t.Fatal("recovered Register did not persist")
	}
}

// TestChaosDirStorePutRetry: DirStore.Put absorbs one transient write
// failure per call (retry-once) but still surfaces persistent ones.
func TestChaosDirStorePutRetry(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	failures := 1
	realCreate := ds.createTemp
	ds.createTemp = func(d, pattern string) (*os.File, error) {
		if failures > 0 {
			failures--
			return nil, errors.New("transient disk error")
		}
		return realCreate(d, pattern)
	}
	if err := ds.Put("v1/m", []byte("payload")); err != nil {
		t.Fatalf("Put with one transient failure: %v", err)
	}
	if data, err := ds.Get("v1/m"); err != nil || string(data) != "payload" {
		t.Fatalf("retried Put lost data: %q, %v", data, err)
	}
	failures = 2 // both attempts fail
	if err := ds.Put("v1/n", []byte("payload")); err == nil {
		t.Fatal("Put swallowed a persistent failure")
	}
	// A failed rename must not leak its temp file into the directory.
	failures = 0
	realRename := ds.rename
	ds.rename = func(oldpath, newpath string) error { return errors.New("rename failed") }
	if err := ds.Put("v1/o", []byte("payload")); err == nil {
		t.Fatal("Put swallowed a rename failure")
	}
	ds.rename = realRename
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			t.Fatalf("failed Put leaked temp file %q", filepath.Join(dir, ent.Name()))
		}
	}
}
