package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// tableModels is the paper's model ordering in Tables 2, 4, and 5.
var tableModels = []string{"ctfidf", "ccnn", "clstm", "wtfidf", "wcnn", "wlstm"}

// Table1Row is one column of the paper's Table 1 (dataset sizes).
type Table1Row struct {
	Setting                   string
	Total, Train, Valid, Test int
}

// Table1 reports the number of queries and the data split for the
// three settings.
func Table1(env *Env) ([]Table1Row, string) {
	rows := make([]Table1Row, 0, 3)
	for _, s := range []Setting{HomoInstance, HomoSchema, HeteroSchema} {
		split := env.SplitFor(s)
		rows = append(rows, Table1Row{
			Setting: s.String(),
			Total:   len(split.Train) + len(split.Valid) + len(split.Test),
			Train:   len(split.Train),
			Valid:   len(split.Valid),
			Test:    len(split.Test),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: number of queries and data split\n")
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s\n", "Setting", "Total", "Train", "Valid", "Test")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %8d %8d %8d %8d\n", r.Setting, r.Total, r.Train, r.Valid, r.Test)
	}
	return rows, b.String()
}

// Table2Row is one model's row in Table 2: error classification, CPU
// time, and answer size prediction in Homogeneous Instance (SDSS).
type Table2Row struct {
	Model                                   string
	V, P                                    int
	Accuracy, FSevere, FSuccess, FNonSevere float64
	ErrLoss                                 float64
	CPULoss, AnsLoss                        float64
}

// Table2 reproduces Table 2 on the SDSS-like workload.
func Table2(env *Env) ([]Table2Row, error) {
	test := env.SDSSSplit.Test
	names := append([]string{}, tableModels...)

	errModels, err := env.TrainAll(append(names, "mfreq"), core.ErrorClassification, HomoInstance)
	if err != nil {
		return nil, err
	}
	cpuModels, err := env.TrainAll(append(names, "median"), core.CPUTimePrediction, HomoInstance)
	if err != nil {
		return nil, err
	}
	ansModels, err := env.TrainAll(append(names, "median"), core.AnswerSizePrediction, HomoInstance)
	if err != nil {
		return nil, err
	}

	order := append([]string{"baseline"}, names...)
	rows := make([]Table2Row, 0, len(order))
	for _, name := range order {
		errName, regName := name, name
		if name == "baseline" {
			errName, regName = "mfreq", "median"
		}
		em := errModels[errName]
		ev := env.evalClassifier(em, core.ErrorClassification, test)
		row := Table2Row{
			Model:      name,
			V:          em.V,
			P:          em.P,
			Accuracy:   ev.Accuracy,
			FSevere:    ev.PerClass[0].F1,
			FSuccess:   ev.PerClass[1].F1,
			FNonSevere: ev.PerClass[2].F1,
			ErrLoss:    ev.Loss,
		}
		row.CPULoss = env.evalRegressor(cpuModels[regName], core.CPUTimePrediction, test).Loss
		row.AnsLoss = env.evalRegressor(ansModels[regName], core.AnswerSizePrediction, test).Loss
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats Table 2 like the paper.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: error classification / CPU time / answer size (Homogeneous Instance, SDSS)\n")
	fmt.Fprintf(&b, "%-9s %8s %9s %9s %8s %9s %11s %8s %8s %8s\n",
		"Model", "v", "p", "Accuracy", "Fsevere", "Fsuccess", "Fnon_severe", "ErrLoss", "CPULoss", "AnsLoss")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8d %9d %9.4f %8.4f %9.4f %11.4f %8.4f %8.4f %8.4f\n",
			r.Model, r.V, r.P, r.Accuracy, r.FSevere, r.FSuccess, r.FNonSevere,
			r.ErrLoss, r.CPULoss, r.AnsLoss)
	}
	return b.String()
}

// QErrorRow is one model's qerror percentiles (Tables 3, 6, 7).
type QErrorRow struct {
	Model       string
	Percentiles []float64
	Values      []float64
}

// Table3 reproduces the answer-size qerror percentiles on SDSS
// (Table 3), percentiles 50-95.
func Table3(env *Env) ([]QErrorRow, error) {
	return qerrorTable(env, core.AnswerSizePrediction, HomoInstance,
		[]float64{50, 75, 80, 85, 90, 95})
}

func qerrorTable(env *Env, task core.Task, setting Setting, percentiles []float64) ([]QErrorRow, error) {
	test := env.SplitFor(setting).Test
	names := append([]string{"median"}, tableModels...)
	models, err := env.TrainAll(names, task, setting)
	if err != nil {
		return nil, err
	}
	rows := make([]QErrorRow, 0, len(names))
	for _, name := range names {
		ev := env.evalRegressor(models[name], task, test)
		rows = append(rows, QErrorRow{
			Model:       name,
			Percentiles: percentiles,
			Values:      metrics.QErrorPercentiles(ev.RawTrue, ev.RawPred, percentiles),
		})
	}
	return rows, nil
}

// RenderQErrorTable formats a qerror percentile table.
func RenderQErrorTable(title string, rows []QErrorRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-9s", "Model")
	if len(rows) > 0 {
		for _, p := range rows[0].Percentiles {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("%.0f%%", p))
		}
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s", r.Model)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %9.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table4Row is one model's row in Table 4 (session classification).
type Table4Row struct {
	Model    string
	V, P     int
	Loss     float64
	F        []float64 // per session class, label order
	Accuracy float64
}

// Table4 reproduces session classification on SDSS.
func Table4(env *Env) ([]Table4Row, error) {
	test := env.SDSSSplit.Test
	names := append([]string{"mfreq"}, tableModels...)
	models, err := env.TrainAll(names, core.SessionClassification, HomoInstance)
	if err != nil {
		return nil, err
	}
	rows := make([]Table4Row, 0, len(names))
	for _, name := range names {
		ev := env.evalClassifier(models[name], core.SessionClassification, test)
		f := make([]float64, workload.NumSessionClasses)
		for c := range f {
			f[c] = ev.PerClass[c].F1
		}
		rows = append(rows, Table4Row{
			Model: name, V: models[name].V, P: models[name].P,
			Loss: ev.Loss, F: f, Accuracy: ev.Accuracy,
		})
	}
	return rows, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: session classification (Homogeneous Instance, SDSS)\n")
	fmt.Fprintf(&b, "%-9s %8s %9s %7s", "Model", "v", "p", "Loss")
	for _, name := range workload.SessionClassNames {
		fmt.Fprintf(&b, " %10s", "F_"+name)
	}
	fmt.Fprintf(&b, " %9s\n", "Accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8d %9d %7.4f", r.Model, r.V, r.P, r.Loss)
		for _, f := range r.F {
			fmt.Fprintf(&b, " %10.4f", f)
		}
		fmt.Fprintf(&b, " %9.4f\n", r.Accuracy)
	}
	return b.String()
}

// Table5Row is one model's row in Table 5 (CPU time on SQLShare under
// the two schema settings).
type Table5Row struct {
	Model      string
	V          int
	PHomo      int
	LossHomo   float64
	PHetero    int
	LossHetero float64
}

// Table5 reproduces CPU-time prediction on SQLShare for Homogeneous
// Schema and Heterogeneous Schema, including the opt baseline.
func Table5(env *Env) ([]Table5Row, error) {
	names := append([]string{"median"}, tableModels...)
	rows := make([]Table5Row, 0, len(names)+1)

	evalSetting := func(name string, setting Setting) (*core.Model, core.EvalRegression, error) {
		m, err := env.Model(name, core.CPUTimePrediction, setting)
		if err != nil {
			return nil, core.EvalRegression{}, err
		}
		return m, env.evalRegressor(m, core.CPUTimePrediction, env.SplitFor(setting).Test), nil
	}

	for _, name := range names {
		mHomo, evHomo, err := evalSetting(name, HomoSchema)
		if err != nil {
			return nil, err
		}
		mHet, evHet, err := evalSetting(name, HeteroSchema)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Model: name, V: mHomo.V,
			PHomo: mHomo.P, LossHomo: evHomo.Loss,
			PHetero: mHet.P, LossHetero: evHet.Loss,
		})
		if name == "median" {
			optRow, err := table5Opt(env)
			if err != nil {
				return nil, err
			}
			rows = append(rows, optRow)
		}
	}
	return rows, nil
}

func table5Opt(env *Env) (Table5Row, error) {
	row := Table5Row{Model: "opt"}
	for _, setting := range []Setting{HomoSchema, HeteroSchema} {
		split := env.SplitFor(setting)
		m, err := core.FitOpt(core.CPUTimePrediction, split.Train, env.OptEstimates(split.Train))
		if err != nil {
			return row, err
		}
		ev := core.EvaluateOpt(m, core.CPUTimePrediction, split.Test, env.OptEstimates(split.Test))
		if setting == HomoSchema {
			row.LossHomo = ev.Loss
		} else {
			row.LossHetero = ev.Loss
		}
	}
	return row, nil
}

// RenderTable5 formats Table 5.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: CPU time prediction (SQLShare)\n")
	fmt.Fprintf(&b, "%-9s %8s | %9s %9s | %9s %9s\n",
		"Model", "v", "p(homo)", "Loss", "p(het)", "Loss")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8d | %9d %9.4f | %9d %9.4f\n",
			r.Model, r.V, r.PHomo, r.LossHomo, r.PHetero, r.LossHetero)
	}
	return b.String()
}

// Table6 reproduces CPU-time qerror percentiles on SQLShare,
// Homogeneous Schema (Table 6).
func Table6(env *Env) ([]QErrorRow, error) {
	return qerrorTable(env, core.CPUTimePrediction, HomoSchema,
		[]float64{40, 50, 60, 70, 75, 80})
}

// Table7 reproduces CPU-time qerror percentiles on SQLShare,
// Heterogeneous Schema (Table 7).
func Table7(env *Env) ([]QErrorRow, error) {
	return qerrorTable(env, core.CPUTimePrediction, HeteroSchema,
		[]float64{10, 20, 30, 40, 50, 60})
}
