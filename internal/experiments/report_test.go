package experiments

import (
	"strings"
	"testing"
)

func TestRunTableUnknown(t *testing.T) {
	env := testEnv(t)
	if _, err := RunTable(env, 99); err == nil {
		t.Fatal("unknown table should error")
	}
	if _, err := RunTable(env, 0); err == nil {
		t.Fatal("table 0 should error")
	}
}

func TestRunFigureUnknown(t *testing.T) {
	env := testEnv(t)
	if _, err := RunFigure(env, 5); err == nil {
		t.Fatal("figure 5 is not in the paper's evaluation")
	}
}

func TestRunEveryTable(t *testing.T) {
	env := testEnv(t)
	for _, n := range AllTables {
		text, err := RunTable(env, n)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if len(text) == 0 {
			t.Fatalf("table %d: empty rendering", n)
		}
	}
}

func TestRunEveryFigure(t *testing.T) {
	env := testEnv(t)
	for _, n := range AllFigures {
		text, err := RunFigure(env, n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(text) == 0 {
			t.Fatalf("figure %d: empty rendering", n)
		}
	}
}

func TestRunAllConcatenates(t *testing.T) {
	env := testEnv(t)
	text, err := RunAll(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Table 5", "Figure 3", "Figure 14", "Figure 20"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RunAll missing %q", want)
		}
	}
}
