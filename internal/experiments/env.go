// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) on the synthetic SDSS-like and SQLShare-like
// workloads. Each TableN/FigureN function returns structured results
// plus a formatted text rendering matching the paper's rows/series.
package experiments

import (
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/simdb"
	"repro/internal/synth"
	"repro/internal/workload"
)

// Setting is a problem setting from Definition 5.
type Setting int

// The three settings.
const (
	HomoInstance Setting = iota // SDSS, random split
	HomoSchema                  // SQLShare, random split
	HeteroSchema                // SQLShare, user split
)

// String names the setting as the paper does.
func (s Setting) String() string {
	switch s {
	case HomoInstance:
		return "Homogeneous Instance"
	case HomoSchema:
		return "Homogeneous Schema"
	case HeteroSchema:
		return "Heterogeneous Schema"
	default:
		return "?"
	}
}

// Scale controls dataset sizes and training budgets.
type Scale struct {
	SDSSSessions           int
	SQLShareUsers          int
	SQLShareQueriesPerUser int
	Cfg                    core.Config
	Seed                   int64
	// TrainWorkers, when non-zero, overrides Cfg.Workers: the number of
	// goroutines the training engine uses per mini-batch inside each
	// model (core.Trainer). This intra-model parallelism composes with
	// the harness's across-model parallelism (TrainAll): total
	// concurrency is roughly #models x TrainWorkers, so on small
	// machines prefer one or the other. -1 selects
	// min(GOMAXPROCS, batch size).
	TrainWorkers int
	// EvalWorkers is the serve.Predictor replica count the evaluation
	// loops fan test statements across. 0 (the default) selects
	// GOMAXPROCS; negative forces the sequential direct-model path.
	// Pooled and sequential evaluation are bit-identical, so this only
	// changes wall-clock time.
	EvalWorkers int
}

// effectiveCfg resolves the per-model training config, applying the
// TrainWorkers override.
func (s Scale) effectiveCfg() core.Config {
	cfg := s.Cfg
	switch {
	case s.TrainWorkers > 0:
		cfg.Workers = s.TrainWorkers
	case s.TrainWorkers < 0:
		cfg.Workers = 0 // auto: min(GOMAXPROCS, batch)
	}
	return cfg
}

// DefaultScale is the full scaled-down reproduction (roughly 1/50 of
// the paper's data sizes; Section 2 of DESIGN.md).
func DefaultScale() Scale {
	return Scale{
		SDSSSessions: 14000, SQLShareUsers: 60, SQLShareQueriesPerUser: 60,
		Cfg: core.DefaultConfig(), Seed: 1,
	}
}

// SmallScale is for quick runs and benchmarks.
func SmallScale() Scale {
	cfg := core.TinyConfig()
	cfg.Epochs = 1
	return Scale{
		SDSSSessions: 1400, SQLShareUsers: 16, SQLShareQueriesPerUser: 30,
		Cfg: cfg, Seed: 1,
	}
}

// Env generates and caches the datasets, splits, catalogs, and trained
// models shared across experiments.
type Env struct {
	Scale Scale

	SDSS      *workload.Workload
	SDSSSplit workload.Split

	SQLShare    *workload.Workload
	HomoSplit   workload.Split // SQLShare random split
	HeteroSplit workload.Split // SQLShare user split

	SDSSCatalog  *simdb.Catalog
	UserCatalogs map[string]*simdb.Catalog

	mu     sync.Mutex
	models map[modelKey]*modelEntry

	// trainFn is the model trainer, replaceable by tests (e.g. with a
	// blocking stub to exercise the single-flight cache); nil means
	// core.Train.
	trainFn func(name string, task core.Task, train []workload.Item, cfg core.Config) (*core.Model, error)
}

type modelKey struct {
	name    string
	task    core.Task
	setting Setting
}

// modelEntry is the single-flight cache slot for one (name, task,
// setting): the sync.Once guarantees the model trains exactly once
// even when concurrent TrainAll goroutines miss the cache together.
type modelEntry struct {
	once sync.Once
	m    *core.Model
	err  error
}

// NewEnv generates the workloads for a scale.
func NewEnv(scale Scale) *Env {
	sdssGen := synth.NewSDSS(synth.SDSSConfig{
		Sessions: scale.SDSSSessions, HitsPerSessionMax: 3, Seed: scale.Seed,
	})
	sqlGen := synth.NewSQLShare(synth.SQLShareConfig{
		Users: scale.SQLShareUsers, QueriesPerUser: scale.SQLShareQueriesPerUser,
		Seed: scale.Seed + 100,
	})
	scale.Cfg = scale.effectiveCfg()
	env := &Env{
		Scale:       scale,
		SDSS:        sdssGen.Generate(),
		SQLShare:    sqlGen.Generate(),
		SDSSCatalog: sdssGen.Catalog(),
		models:      map[modelKey]*modelEntry{},
	}
	env.UserCatalogs = sqlGen.Catalogs()
	env.SDSSSplit = workload.RandomSplit(env.SDSS.Items, 0.1, 0.1, rand.New(rand.NewSource(scale.Seed+7)))
	env.HomoSplit = workload.RandomSplit(env.SQLShare.Items, 0.1, 0.1, rand.New(rand.NewSource(scale.Seed+8)))
	env.HeteroSplit = workload.UserSplit(env.SQLShare.Items, 0.07, 0.1, rand.New(rand.NewSource(scale.Seed+9)))
	return env
}

// SplitFor returns the train/valid/test split for a setting.
func (e *Env) SplitFor(s Setting) workload.Split {
	switch s {
	case HomoInstance:
		return e.SDSSSplit
	case HomoSchema:
		return e.HomoSplit
	default:
		return e.HeteroSplit
	}
}

// Model trains (or returns the cached) named model for a task in a
// setting. Concurrent callers that miss the cache together train the
// model exactly once: the per-key entry is installed under the mutex
// and its sync.Once serializes the training, so no (name, task,
// setting) is ever trained twice or raced into the cache. Training
// errors are cached too (they are deterministic configuration errors).
func (e *Env) Model(name string, task core.Task, setting Setting) (*core.Model, error) {
	key := modelKey{name, task, setting}
	e.mu.Lock()
	ent, ok := e.models[key]
	if !ok {
		ent = &modelEntry{}
		e.models[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		train := e.trainFn
		if train == nil {
			train = core.Train
		}
		split := e.SplitFor(setting)
		ent.m, ent.err = train(name, task, split.Train, e.Scale.Cfg)
	})
	return ent.m, ent.err
}

// TrainAll trains the named models for a task/setting concurrently and
// returns them keyed by name.
func (e *Env) TrainAll(names []string, task core.Task, setting Setting) (map[string]*core.Model, error) {
	out := make(map[string]*core.Model, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			m, err := e.Model(name, task, setting)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			out[name] = m
			mu.Unlock()
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OptEstimate computes the optimizer cost estimate for one item under
// its own database: SDSS items use the shared SDSS catalog, SQLShare
// items the owning user's catalog.
func (e *Env) OptEstimate(item workload.Item) float64 {
	cat := e.SDSSCatalog
	if item.User != "" {
		if c, ok := e.UserCatalogs[item.User]; ok {
			cat = c
		}
	}
	opt := &simdb.Optimizer{Catalog: cat}
	return opt.EstimateCost(item.Statement)
}

// OptEstimates maps OptEstimate over items.
func (e *Env) OptEstimates(items []workload.Item) []float64 {
	out := make([]float64, len(items))
	for i, item := range items {
		out[i] = e.OptEstimate(item)
	}
	return out
}
