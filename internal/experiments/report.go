package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// RunTable regenerates one numbered table and returns its rendering.
func RunTable(env *Env, n int) (string, error) {
	switch n {
	case 1:
		_, text := Table1(env)
		return text, nil
	case 2:
		rows, err := Table2(env)
		if err != nil {
			return "", err
		}
		return RenderTable2(rows), nil
	case 3:
		rows, err := Table3(env)
		if err != nil {
			return "", err
		}
		return RenderQErrorTable("Table 3: answer size prediction qerror (SDSS)", rows), nil
	case 4:
		rows, err := Table4(env)
		if err != nil {
			return "", err
		}
		return RenderTable4(rows), nil
	case 5:
		rows, err := Table5(env)
		if err != nil {
			return "", err
		}
		return RenderTable5(rows), nil
	case 6:
		rows, err := Table6(env)
		if err != nil {
			return "", err
		}
		return RenderQErrorTable("Table 6: CPU time prediction qerror (SQLShare, Homogeneous Schema)", rows), nil
	case 7:
		rows, err := Table7(env)
		if err != nil {
			return "", err
		}
		return RenderQErrorTable("Table 7: CPU time prediction qerror (SQLShare, Heterogeneous Schema)", rows), nil
	default:
		return "", fmt.Errorf("experiments: no table %d", n)
	}
}

// RunFigure regenerates one numbered figure and returns its rendering.
func RunFigure(env *Env, n int) (string, error) {
	switch n {
	case 3:
		_, text := FigureStructural(env, true)
		return text, nil
	case 4:
		_, text := FigureStructural(env, false)
		return text, nil
	case 6:
		_, text := Figure6(env)
		return text, nil
	case 7:
		_, textS := Figure7(env, true)
		_, textQ := Figure7(env, false)
		return textS + "\n" + textQ, nil
	case 8:
		_, text := Figure8(env)
		return text, nil
	case 12:
		var b strings.Builder
		cpu, err := Figure12(env, core.CPUTimePrediction)
		if err != nil {
			return "", err
		}
		b.WriteString(RenderFigure12("CPU time", cpu))
		ans, err := Figure12(env, core.AnswerSizePrediction)
		if err != nil {
			return "", err
		}
		b.WriteString(RenderFigure12("answer size", ans))
		return b.String(), nil
	case 13:
		res, err := Figure13(env)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString("Figure 13: error analysis of answer size prediction (SDSS)\n")
		propNames := []string{"number of characters", "number of functions", "number of joins"}
		for _, model := range append([]string{"median"}, tableModels...) {
			curves := res.ByModel[model]
			for p, curve := range curves {
				b.WriteString(RenderBinnedCurve(fmt.Sprintf("(%s) squared error by %s", model, propNames[p]), curve))
			}
		}
		b.WriteString(RenderBinnedCurve("(d) ccnn by nestedness level", res.CCNNByNestedness))
		b.WriteString(RenderBinnedCurve("(e) ccnn by nested aggregation", res.CCNNByNestedAgg))
		return b.String(), nil
	case 14:
		var b strings.Builder
		b.WriteString("Figure 14: error analysis of CPU time prediction across settings\n")
		for _, s := range []Setting{HomoInstance, HomoSchema, HeteroSchema} {
			res, err := Figure14(env, s)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "[%s]\n", s)
			for _, model := range append([]string{"median"}, tableModels...) {
				fmt.Fprintf(&b, "    %-9s MSE = %.4f\n", model, res.MSEByModel[model])
			}
			b.WriteString(RenderBinnedCurve("    ccnn squared error by number of characters", res.CharCurves["ccnn"]))
			b.WriteString(RenderBinnedCurve("    ccnn squared error by nestedness level", res.CCNNByNest))
		}
		return b.String(), nil
	case 20:
		_, text := Figure20(env)
		return text, nil
	default:
		return "", fmt.Errorf("experiments: no figure %d", n)
	}
}

// AllTables lists the reproduced table numbers.
var AllTables = []int{1, 2, 3, 4, 5, 6, 7}

// AllFigures lists the reproduced figure numbers.
var AllFigures = []int{3, 4, 6, 7, 8, 12, 13, 14, 20}

// RunAll regenerates every table and figure, concatenated.
func RunAll(env *Env) (string, error) {
	var b strings.Builder
	for _, n := range AllTables {
		text, err := RunTable(env, n)
		if err != nil {
			return "", err
		}
		b.WriteString(text)
		b.WriteString("\n")
	}
	for _, n := range AllFigures {
		text, err := RunFigure(env, n)
		if err != nil {
			return "", err
		}
		b.WriteString(text)
		b.WriteString("\n")
	}
	return b.String(), nil
}
