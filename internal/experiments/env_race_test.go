package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestModelSingleFlight reproduces the old Env.Model check-then-act
// race with a blocking trainer stub: many goroutines miss the cache
// together and must still train each (name, task, setting) exactly
// once and observe the same *core.Model. Run under -race in CI.
func TestModelSingleFlight(t *testing.T) {
	env := NewEnv(Scale{
		SDSSSessions: 60, SQLShareUsers: 2, SQLShareQueriesPerUser: 4,
		Cfg: core.TinyConfig(), Seed: 1,
	})

	var trainings atomic.Int64
	gate := make(chan struct{})
	env.trainFn = func(name string, task core.Task, train []workload.Item, cfg core.Config) (*core.Model, error) {
		trainings.Add(1)
		<-gate // park every in-flight training until all goroutines race the cache
		return core.Train("mfreq", core.ErrorClassification, train, cfg)
	}

	const goroutines = 8
	models := make([]*core.Model, goroutines)
	errs := make([]error, goroutines)
	var started, wg sync.WaitGroup
	started.Add(goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			started.Done()
			models[g], errs[g] = env.Model("ccnn", core.ErrorClassification, HomoInstance)
		}(g)
	}
	started.Wait() // every goroutine is past the cache check or parked in Do
	close(gate)
	wg.Wait()

	if got := trainings.Load(); got != 1 {
		t.Fatalf("model trained %d times, want exactly 1", got)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if models[g] != models[0] {
			t.Fatalf("goroutine %d observed a different model instance", g)
		}
	}

	// A second key trains independently, and a repeat hit stays cached.
	env.trainFn = nil
	m2, err := env.Model("mfreq", core.ErrorClassification, HomoInstance)
	if err != nil {
		t.Fatal(err)
	}
	m2again, err := env.Model("mfreq", core.ErrorClassification, HomoInstance)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m2again {
		t.Fatal("cache returned a different instance on a repeat hit")
	}
	if m2 == models[0] {
		t.Fatal("distinct keys must not share a cache slot")
	}
}

// TestTrainAllConcurrentSameKey hammers TrainAll with overlapping
// name sets so concurrent goroutines contend on the same keys.
func TestTrainAllConcurrentSameKey(t *testing.T) {
	env := NewEnv(Scale{
		SDSSSessions: 60, SQLShareUsers: 2, SQLShareQueriesPerUser: 4,
		Cfg: core.TinyConfig(), Seed: 1,
	})
	var trainings atomic.Int64
	env.trainFn = func(name string, task core.Task, train []workload.Item, cfg core.Config) (*core.Model, error) {
		trainings.Add(1)
		return core.Train(name, task, train, cfg)
	}
	names := []string{"mfreq", "ctfidf"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := env.TrainAll(names, core.ErrorClassification, HomoInstance); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := trainings.Load(); got != int64(len(names)) {
		t.Fatalf("trained %d times, want %d (once per key)", got, len(names))
	}
}
