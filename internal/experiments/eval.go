package experiments

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

// This file routes the harness's evaluation loops through the serving
// layer: test statements are fanned across a serve.Predictor replica
// pool instead of being fed to the model one at a time. Pooled
// predictions are bit-identical to sequential Model calls, so every
// table and figure is unchanged — only wall-clock time improves on
// multi-core machines (and the serve path gets exercised by the whole
// experiment suite, including under -race in CI).
//
// Each eval call builds and closes its own short-lived Predictor.
// Construction is cheap relative to what it serves — weight-sharing
// replica clones plus a goroutine pool, microseconds against the
// seconds each cached model took to train — and caching predictors in
// Env would park worker goroutines for the Env's whole lifetime (Env
// has no Close hook).

// evalWorkers resolves Scale.EvalWorkers (0 = GOMAXPROCS, negative =
// sequential).
func (e *Env) evalWorkers() int {
	w := e.Scale.EvalWorkers
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// statements extracts the statement column of a test split.
func statements(items []workload.Item) []string {
	out := make([]string, len(items))
	for i, item := range items {
		out[i] = item.Statement
	}
	return out
}

// evalClassifier computes classification metrics for m on test,
// fanning the predictions across a replica pool.
func (e *Env) evalClassifier(m *core.Model, task core.Task, test []workload.Item) core.EvalClassification {
	w := e.evalWorkers()
	if w < 1 {
		return core.EvaluateClassifier(m, task, test)
	}
	p := serve.NewPredictor(m, serve.Options{Replicas: w})
	defer p.Close()
	return core.ClassificationEval(p.ProbsBatch(statements(test)), task, test)
}

// evalRegressor computes regression metrics for m on test, fanning the
// predictions across a replica pool.
func (e *Env) evalRegressor(m *core.Model, task core.Task, test []workload.Item) core.EvalRegression {
	w := e.evalWorkers()
	if w < 1 {
		return core.EvaluateRegressor(m, task, test)
	}
	p := serve.NewPredictor(m, serve.Options{Replicas: w})
	defer p.Close()
	return core.RegressionEval(p.PredictLogBatch(statements(test)), m.LogMin, task, test)
}
