package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// sharedEnv builds one small environment reused by all tests in this
// package (dataset generation and model training dominate test time).
var sharedEnv *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		sharedEnv = NewEnv(SmallScale())
	}
	return sharedEnv
}

func TestSettingString(t *testing.T) {
	if HomoInstance.String() != "Homogeneous Instance" ||
		HomoSchema.String() != "Homogeneous Schema" ||
		HeteroSchema.String() != "Heterogeneous Schema" {
		t.Fatal("setting names")
	}
}

func TestTable1(t *testing.T) {
	env := testEnv(t)
	rows, text := Table1(env)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != r.Train+r.Valid+r.Test {
			t.Fatalf("split does not sum: %+v", r)
		}
		if r.Train <= r.Test {
			t.Fatalf("train should dominate: %+v", r)
		}
	}
	if !strings.Contains(text, "Homogeneous Instance") {
		t.Fatal("render missing setting name")
	}
}

func TestTable2ShapeAndBaselines(t *testing.T) {
	env := testEnv(t)
	rows, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (baseline + 6 models)", len(rows))
	}
	if rows[0].Model != "baseline" {
		t.Fatal("first row must be the baseline")
	}
	// mfreq achieves high accuracy on the imbalanced error task but
	// zero F on the rare classes (the paper's Table 2 pattern).
	if rows[0].Accuracy < 0.9 {
		t.Fatalf("baseline accuracy = %v", rows[0].Accuracy)
	}
	if rows[0].FSevere != 0 || rows[0].FNonSevere != 0 {
		t.Fatal("mfreq F on rare classes must be 0")
	}
	// Learned models must beat the trivial regression baseline on at
	// least one of the regression tasks.
	better := 0
	for _, r := range rows[1:] {
		if r.CPULoss < rows[0].CPULoss || r.AnsLoss < rows[0].AnsLoss {
			better++
		}
	}
	if better == 0 {
		t.Fatal("no learned model beats the median baseline")
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "ccnn") || !strings.Contains(text, "Fsevere") {
		t.Fatal("render incomplete")
	}
}

func TestTable3QErrors(t *testing.T) {
	env := testEnv(t)
	rows, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for i, v := range r.Values {
			if v < 1 {
				t.Fatalf("%s qerror[%d] = %v < 1", r.Model, i, v)
			}
			if i > 0 && v < r.Values[i-1]-1e-9 {
				t.Fatalf("%s qerror percentiles must be nondecreasing", r.Model)
			}
		}
	}
	text := RenderQErrorTable("Table 3", rows)
	if !strings.Contains(text, "50%") {
		t.Fatal("render missing percentile header")
	}
}

func TestTable4SessionClassification(t *testing.T) {
	env := testEnv(t)
	rows, err := Table4(env)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Model != "mfreq" {
		t.Fatal("first row must be mfreq")
	}
	if len(rows[0].F) != workload.NumSessionClasses {
		t.Fatal("per-class F count")
	}
	// mfreq predicts no_web_hit everywhere: accuracy equals the class
	// frequency and only F_no_web_hit is nonzero.
	for c, f := range rows[0].F {
		if c == int(workload.NoWebHit) {
			if f <= 0 {
				t.Fatal("F_no_web_hit must be positive for mfreq")
			}
			continue
		}
		if f != 0 {
			t.Fatalf("mfreq F[%d] = %v, want 0", c, f)
		}
	}
	text := RenderTable4(rows)
	if !strings.Contains(text, "F_bot") {
		t.Fatal("render missing class header")
	}
}

func TestTable5BothSettings(t *testing.T) {
	env := testEnv(t)
	rows, err := Table5(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (median, opt, 6 models)", len(rows))
	}
	if rows[0].Model != "median" || rows[1].Model != "opt" {
		t.Fatalf("row order: %s, %s", rows[0].Model, rows[1].Model)
	}
	for _, r := range rows {
		if r.LossHomo < 0 || r.LossHetero < 0 {
			t.Fatalf("negative loss: %+v", r)
		}
	}
	text := RenderTable5(rows)
	if !strings.Contains(text, "opt") {
		t.Fatal("render missing opt row")
	}
}

func TestTables6And7(t *testing.T) {
	env := testEnv(t)
	t6, err := Table6(env)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := Table7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6) == 0 || len(t7) == 0 {
		t.Fatal("empty qerror tables")
	}
	if t6[0].Percentiles[0] != 40 || t7[0].Percentiles[0] != 10 {
		t.Fatal("percentile sets must match the paper's tables")
	}
}

func TestFigureStructural(t *testing.T) {
	env := testEnv(t)
	sdss, textS := FigureStructural(env, true)
	sqlshare, textQ := FigureStructural(env, false)
	if len(sdss) != 10 || len(sqlshare) != 10 {
		t.Fatal("ten properties expected")
	}
	if !strings.Contains(textS, "Figure 3") || !strings.Contains(textQ, "Figure 4") {
		t.Fatal("titles")
	}
	// Median characters should be positive in both workloads.
	if sdss[0].Summary.Median <= 0 || sqlshare[0].Summary.Median <= 0 {
		t.Fatal("degenerate char distribution")
	}
}

func TestFigure6(t *testing.T) {
	env := testEnv(t)
	res, text := Figure6(env)
	if res.ErrorCounts["success"] == 0 {
		t.Fatal("missing success count")
	}
	if res.SDSSAnswer.Median > 100 {
		t.Fatalf("SDSS answer median = %v, paper reports 1", res.SDSSAnswer.Median)
	}
	if !strings.Contains(text, "session classes") {
		t.Fatal("render")
	}
}

func TestFigure7Symmetric(t *testing.T) {
	env := testEnv(t)
	m, text := Figure7(env, true)
	if len(m) != 10 {
		t.Fatal("matrix dims")
	}
	for i := range m {
		if math.Abs(m[i][i]-1) > 1e-9 {
			t.Fatal("diagonal must be 1")
		}
		for j := range m {
			if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
				t.Fatal("matrix must be symmetric")
			}
		}
	}
	if !strings.Contains(text, "correlation matrix") {
		t.Fatal("render")
	}
}

func TestFigure8(t *testing.T) {
	env := testEnv(t)
	res, text := Figure8(env)
	if len(res.AnswerSize) != workload.NumSessionClasses {
		t.Fatal("class count")
	}
	if !strings.Contains(text, "bot") {
		t.Fatal("render")
	}
}

func TestFigure12(t *testing.T) {
	env := testEnv(t)
	rows, err := Figure12(env, core.CPUTimePrediction)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Overall < 0 {
			t.Fatal("negative MSE")
		}
	}
	text := RenderFigure12("CPU time", rows)
	if !strings.Contains(text, "no_web_hit") {
		t.Fatal("render")
	}
}

func TestFigure13(t *testing.T) {
	env := testEnv(t)
	res, err := Figure13(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByModel) != 7 {
		t.Fatalf("models = %d", len(res.ByModel))
	}
	curves := res.ByModel["ccnn"]
	if len(curves[0]) == 0 {
		t.Fatal("empty char curve")
	}
	if len(res.CCNNByNestedness) == 0 || len(res.CCNNByNestedAgg) == 0 {
		t.Fatal("ccnn nestedness curves missing")
	}
}

func TestFigure14AllSettings(t *testing.T) {
	env := testEnv(t)
	for _, s := range []Setting{HomoInstance, HomoSchema, HeteroSchema} {
		res, err := Figure14(env, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.MSEByModel) != 7 {
			t.Fatalf("%v: models = %d", s, len(res.MSEByModel))
		}
		if len(res.CharCurves["ccnn"]) == 0 {
			t.Fatalf("%v: no char curve", s)
		}
	}
}

func TestFigure20(t *testing.T) {
	env := testEnv(t)
	h, text := Figure20(env)
	if h["1"] == 0 {
		t.Fatal("unique statements must dominate")
	}
	if !strings.Contains(text, "Figure 20") {
		t.Fatal("render")
	}
}

func TestModelCachingReusesTraining(t *testing.T) {
	env := testEnv(t)
	m1, err := env.Model("mfreq", core.ErrorClassification, HomoInstance)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := env.Model("mfreq", core.ErrorClassification, HomoInstance)
	if m1 != m2 {
		t.Fatal("model cache must return the same instance")
	}
}

func TestOptEstimatesUseUserCatalogs(t *testing.T) {
	env := testEnv(t)
	items := env.HomoSplit.Test
	est := env.OptEstimates(items)
	positive := 0
	for _, e := range est {
		if e > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("optimizer estimates should be positive for valid queries")
	}
}
