package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

var analysisCache struct {
	mu   sync.Mutex
	byWL map[*workload.Workload]*workload.Analysis
}

// analysisOf computes (and caches) the workload analysis.
func analysisOf(w *workload.Workload) *workload.Analysis {
	analysisCache.mu.Lock()
	defer analysisCache.mu.Unlock()
	if analysisCache.byWL == nil {
		analysisCache.byWL = map[*workload.Workload]*workload.Analysis{}
	}
	if a, ok := analysisCache.byWL[w]; ok {
		return a
	}
	a := workload.Analyze(w)
	analysisCache.byWL[w] = a
	return a
}

// PropertyStats pairs a structural property with its distribution
// summary (the caption statistics of Figures 3 and 4).
type PropertyStats struct {
	Name    string
	Summary metrics.Summary
}

// FigureStructural reproduces Figure 3 (SDSS) or Figure 4 (SQLShare):
// the distribution statistics of the ten syntactic properties.
func FigureStructural(env *Env, sdss bool) ([]PropertyStats, string) {
	w := env.SQLShare
	title := "Figure 4: structural properties of SQLShare query statements"
	if sdss {
		w = env.SDSS
		title = "Figure 3: structural properties of SDSS query statements"
	}
	a := analysisOf(w)
	out := make([]PropertyStats, len(sqlparse.FeatureNames))
	for j, name := range sqlparse.FeatureNames {
		out[j] = PropertyStats{Name: name, Summary: a.FeatureSummaries[j]}
	}
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-28s %10s %10s %8s %10s %8s %8s\n",
		"Property", "mean", "std", "min", "max", "mode", "median")
	for _, ps := range out {
		s := ps.Summary
		fmt.Fprintf(&b, "%-28s %10.2f %10.2f %8.0f %10.0f %8.2f %8.2f\n",
			ps.Name, s.Mean, s.Std, s.Min, s.Max, s.Mode, s.Median)
	}
	return out, b.String()
}

// Figure6Result holds the label distributions of Figure 6.
type Figure6Result struct {
	ErrorCounts   map[string]int
	SessionCounts map[string]int
	SDSSAnswer    metrics.Summary
	SDSSCPU       metrics.Summary
	SQLShareCPU   metrics.Summary
}

// Figure6 reproduces the label distributions (classification and
// regression) of Figure 6.
func Figure6(env *Env) (Figure6Result, string) {
	aSDSS := analysisOf(env.SDSS)
	aSQL := analysisOf(env.SQLShare)
	res := Figure6Result{
		ErrorCounts:   aSDSS.ErrorClassCounts,
		SessionCounts: aSDSS.SessionClassCounts,
		SDSSAnswer:    aSDSS.AnswerSizeSummary,
		SDSSCPU:       aSDSS.CPUTimeSummary,
		SQLShareCPU:   aSQL.CPUTimeSummary,
	}
	var b strings.Builder
	b.WriteString("Figure 6: label distributions\n(a) SDSS error classes:\n")
	total := 0
	for _, c := range workload.ErrorClassNames {
		total += res.ErrorCounts[c]
	}
	for _, c := range workload.ErrorClassNames {
		fmt.Fprintf(&b, "    %-12s %8d (%.2f%%)\n", c, res.ErrorCounts[c],
			100*float64(res.ErrorCounts[c])/float64(max(total, 1)))
	}
	b.WriteString("(b) SDSS session classes:\n")
	for _, c := range workload.SessionClassNames {
		fmt.Fprintf(&b, "    %-12s %8d (%.2f%%)\n", c, res.SessionCounts[c],
			100*float64(res.SessionCounts[c])/float64(max(total, 1)))
	}
	writeSummary := func(name string, s metrics.Summary) {
		fmt.Fprintf(&b, "%s: mean=%.2f std=%.2f min=%.0f max=%.0f mode=%.2f median=%.2f\n",
			name, s.Mean, s.Std, s.Min, s.Max, s.Mode, s.Median)
	}
	writeSummary("(c) SDSS answer size (#tuples)", res.SDSSAnswer)
	writeSummary("(d) SDSS CPU time (sec)", res.SDSSCPU)
	writeSummary("(e) SQLShare CPU time (sec)", res.SQLShareCPU)
	return res, b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Figure7 reproduces the Pearson correlation matrices of the ten
// structural properties (SDSS and SQLShare).
func Figure7(env *Env, sdss bool) ([][]float64, string) {
	w := env.SQLShare
	name := "SQLShare"
	if sdss {
		w = env.SDSS
		name = "SDSS"
	}
	m := analysisOf(w).Correlation
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (%s): correlation matrix of structural properties\n", name)
	b.WriteString(strings.Repeat(" ", 14))
	for j := range sqlparse.FeatureNames {
		fmt.Fprintf(&b, " p%-5d", j+1)
	}
	b.WriteString("\n")
	for i, row := range m {
		short := sqlparse.FeatureNames[i]
		if len(short) > 13 {
			short = short[:13]
		}
		fmt.Fprintf(&b, "%-14s", short)
		for _, v := range row {
			fmt.Fprintf(&b, " %6.2f", v)
		}
		b.WriteString("\n")
	}
	return m, b.String()
}

// Figure8Result holds per-session-class breakdowns of the four
// quantities plotted in Figure 8.
type Figure8Result struct {
	AnswerSize []workload.ClassBreakdown
	CPUTime    []workload.ClassBreakdown
	NumChars   []workload.ClassBreakdown
	NumWords   []workload.ClassBreakdown
}

// Figure8 reproduces the SDSS per-session-class box statistics.
func Figure8(env *Env) (Figure8Result, string) {
	a := analysisOf(env.SDSS)
	res := Figure8Result{
		AnswerSize: workload.BySessionClass(env.SDSS, a, func(item workload.Item, _ sqlparse.Features) (float64, bool) {
			return item.AnswerSize, item.AnswerSize >= 0
		}),
		CPUTime: workload.BySessionClass(env.SDSS, a, func(item workload.Item, _ sqlparse.Features) (float64, bool) {
			return item.CPUTime, item.CPUTime >= 0
		}),
		NumChars: workload.BySessionClass(env.SDSS, a, func(_ workload.Item, f sqlparse.Features) (float64, bool) {
			return float64(f.NumChars), true
		}),
		NumWords: workload.BySessionClass(env.SDSS, a, func(_ workload.Item, f sqlparse.Features) (float64, bool) {
			return float64(f.NumWords), true
		}),
	}
	var b strings.Builder
	b.WriteString("Figure 8: SDSS analysis by session class (Q1 / median / Q3 / mean)\n")
	write := func(name string, rows []workload.ClassBreakdown) {
		fmt.Fprintf(&b, "(%s)\n", name)
		for _, r := range rows {
			fmt.Fprintf(&b, "    %-12s n=%-6d %12.2f %12.2f %12.2f %14.2f\n",
				r.Class, r.N, r.Q1, r.Median, r.Q3, r.Mean)
		}
	}
	write("a: answer size", res.AnswerSize)
	write("b: CPU time", res.CPUTime)
	write("c: number of characters", res.NumChars)
	write("d: number of words", res.NumWords)
	return res, b.String()
}

// Figure12Row is one model's MSE by session class (Figure 12).
type Figure12Row struct {
	Model   string
	Overall float64
	ByClass []float64 // label order; NaN when the class is absent
}

// Figure12 reproduces MSE of the regression problems by session class
// in Homogeneous Instance.
func Figure12(env *Env, task core.Task) ([]Figure12Row, error) {
	test := env.SDSSSplit.Test
	names := append([]string{"median"}, tableModels...)
	models, err := env.TrainAll(names, task, HomoInstance)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure12Row, 0, len(names))
	for _, name := range names {
		ev := env.evalRegressor(models[name], task, test)
		row := Figure12Row{Model: name, Overall: ev.MSE, ByClass: make([]float64, workload.NumSessionClasses)}
		counts := make([]int, workload.NumSessionClasses)
		sums := make([]float64, workload.NumSessionClasses)
		for i, item := range test {
			d := ev.LogPred[i] - ev.LogTrue[i]
			sums[int(item.Class)] += d * d
			counts[int(item.Class)]++
		}
		for c := range row.ByClass {
			if counts[c] > 0 {
				row.ByClass[c] = sums[c] / float64(counts[c])
			} else {
				row.ByClass[c] = math.NaN()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure12 formats Figure 12.
func RenderFigure12(task string, rows []Figure12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: MSE of %s prediction by session class (SDSS)\n", task)
	fmt.Fprintf(&b, "%-9s %8s", "Model", "MSE")
	for _, c := range workload.SessionClassNames {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %8.4f", r.Model, r.Overall)
		for _, v := range r.ByClass {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %10s", "-")
			} else {
				fmt.Fprintf(&b, " %10.4f", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BinnedError is the mean squared error of items falling in one bin of
// a structural property (the curves of Figures 13 and 14).
type BinnedError struct {
	Lower float64 // bin lower bound
	N     int
	MSE   float64
}

// Figure13Result holds the error analysis of answer-size prediction by
// structural properties.
type Figure13Result struct {
	// ByModel[model][property] is the binned error curve; properties
	// indexed as chars=0, functions=1, joins=2.
	ByModel map[string][3][]BinnedError
	// CCNNByNestedness[level] and CCNNByNestedAgg[0/1] reproduce
	// Figures 13d/13e.
	CCNNByNestedness []BinnedError
	CCNNByNestedAgg  []BinnedError
}

// Figure13 reproduces the error analysis of answer size prediction on
// SDSS by number of characters, functions, joins, nestedness, and
// nested aggregation.
func Figure13(env *Env) (*Figure13Result, error) {
	test := env.SDSSSplit.Test
	feats := make([]sqlparse.Features, len(test))
	for i, item := range test {
		feats[i] = sqlparse.ExtractFeatures(item.Statement)
	}
	names := append([]string{"median"}, tableModels...)
	models, err := env.TrainAll(names, core.AnswerSizePrediction, HomoInstance)
	if err != nil {
		return nil, err
	}
	res := &Figure13Result{ByModel: map[string][3][]BinnedError{}}
	for _, name := range names {
		ev := env.evalRegressor(models[name], core.AnswerSizePrediction, test)
		sq := squaredErrors(ev)
		var curves [3][]BinnedError
		curves[0] = binByLog(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NumChars) })
		curves[1] = binByLog(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NumFunctions) })
		curves[2] = binByLog(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NumJoins) })
		res.ByModel[name] = curves
		if name == "ccnn" {
			res.CCNNByNestedness = binByValue(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NestednessLevel) })
			res.CCNNByNestedAgg = binByValue(sq, feats, func(f sqlparse.Features) float64 {
				if f.NestedAggregation {
					return 1
				}
				return 0
			})
		}
	}
	return res, nil
}

// Figure14Result holds CPU-time error analysis across the three
// problem settings (Figure 14).
type Figure14Result struct {
	Setting    Setting
	MSEByModel map[string]float64
	CharCurves map[string][]BinnedError
	CCNNByNest []BinnedError
}

// Figure14 reproduces the CPU-time error analysis for one setting.
func Figure14(env *Env, setting Setting) (*Figure14Result, error) {
	test := env.SplitFor(setting).Test
	feats := make([]sqlparse.Features, len(test))
	for i, item := range test {
		feats[i] = sqlparse.ExtractFeatures(item.Statement)
	}
	names := append([]string{"median"}, tableModels...)
	models, err := env.TrainAll(names, core.CPUTimePrediction, setting)
	if err != nil {
		return nil, err
	}
	res := &Figure14Result{
		Setting:    setting,
		MSEByModel: map[string]float64{},
		CharCurves: map[string][]BinnedError{},
	}
	for _, name := range names {
		ev := env.evalRegressor(models[name], core.CPUTimePrediction, test)
		sq := squaredErrors(ev)
		res.MSEByModel[name] = ev.MSE
		res.CharCurves[name] = binByLog(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NumChars) })
		if name == "ccnn" {
			res.CCNNByNest = binByValue(sq, feats, func(f sqlparse.Features) float64 { return float64(f.NestednessLevel) })
		}
	}
	return res, nil
}

func squaredErrors(ev core.EvalRegression) []float64 {
	sq := make([]float64, len(ev.LogPred))
	for i := range sq {
		d := ev.LogPred[i] - ev.LogTrue[i]
		sq[i] = d * d
	}
	return sq
}

// binByLog buckets items into power-of-two bins of the property value
// and averages the squared errors per bin.
func binByLog(sq []float64, feats []sqlparse.Features, value func(sqlparse.Features) float64) []BinnedError {
	type acc struct {
		n   int
		sum float64
	}
	bins := map[int]*acc{}
	maxBin := 0
	for i, f := range feats {
		v := value(f)
		bin := 0
		for x := v; x >= 2; x /= 2 {
			bin++
		}
		a := bins[bin]
		if a == nil {
			a = &acc{}
			bins[bin] = a
		}
		a.n++
		a.sum += sq[i]
		if bin > maxBin {
			maxBin = bin
		}
	}
	var out []BinnedError
	lower := 1.0
	for b := 0; b <= maxBin; b++ {
		if a, ok := bins[b]; ok {
			out = append(out, BinnedError{Lower: lower, N: a.n, MSE: a.sum / float64(a.n)})
		}
		lower *= 2
	}
	return out
}

// binByValue buckets by the exact integer property value.
func binByValue(sq []float64, feats []sqlparse.Features, value func(sqlparse.Features) float64) []BinnedError {
	type acc struct {
		n   int
		sum float64
	}
	bins := map[int]*acc{}
	maxBin := 0
	for i, f := range feats {
		bin := int(value(f))
		a := bins[bin]
		if a == nil {
			a = &acc{}
			bins[bin] = a
		}
		a.n++
		a.sum += sq[i]
		if bin > maxBin {
			maxBin = bin
		}
	}
	var out []BinnedError
	for b := 0; b <= maxBin; b++ {
		if a, ok := bins[b]; ok {
			out = append(out, BinnedError{Lower: float64(b), N: a.n, MSE: a.sum / float64(a.n)})
		}
	}
	return out
}

// RenderBinnedCurve formats one binned-error curve.
func RenderBinnedCurve(name string, curve []BinnedError) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", name)
	for _, bin := range curve {
		fmt.Fprintf(&b, "    >=%-10.0f n=%-6d MSE=%.4f\n", bin.Lower, bin.N, bin.MSE)
	}
	return b.String()
}

// Figure20 reproduces the statement repetition histogram of the SDSS
// extraction (Appendix B.3).
func Figure20(env *Env) (map[string]int, string) {
	h := env.SDSS.RepetitionHistogram()
	var b strings.Builder
	b.WriteString("Figure 20: repetition of query statements in the extracted SDSS workload\n")
	for _, bucket := range workload.RepetitionBuckets {
		fmt.Fprintf(&b, "    %-10s %8d\n", bucket, h[bucket])
	}
	return h, b.String()
}
