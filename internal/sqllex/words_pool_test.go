package sqllex

import "testing"

var poolCorpus = []string{
	"SELECT p.objid, p.ra FROM PhotoObj AS p WHERE p.ra BETWEEN 150 AND 152",
	"select top 10 name, 0x112d075f80360018 from SpecObj where z > 0.35e-1",
	"INSERT INTO t VALUES ('it''s 42 o''clock', \"quoted id\", [bracket id])",
	"SELECT a <> b, c <= d, e >= f, g != h, i || j -- trailing comment",
	"/* block */ UPDATE übertable SET größe = 'wert 123' WHERE id = 7",
	"",
	"   ",
	"garbage ?? §§ text ¶",
}

// TestWordTokenizerMatchesWords checks the pooled, interning tokenizer
// emits exactly the Words token stream for every corpus shape
// (identifiers, hex and float literals, escaped strings, quoted
// identifiers, operators, comments, non-ASCII, junk).
func TestWordTokenizerMatchesWords(t *testing.T) {
	wt := NewWordTokenizer()
	for _, q := range poolCorpus {
		want := Words(q)
		got := wt.Words(q)
		if len(got) != len(want) {
			t.Fatalf("%q: %d tokens, want %d\n got %q\nwant %q", q, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: token[%d] = %q, want %q", q, i, got[i], want[i])
			}
		}
	}
	// Second pass: interning must return identical results warm.
	for _, q := range poolCorpus {
		want := Words(q)
		got := wt.AppendWords(nil, q)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("warm pass %q: token[%d] = %q, want %q", q, i, got[i], want[i])
			}
		}
	}
}

// TestWordTokenizerInterns checks the memory contract: the same token
// seen in two queries is one shared string, and a warm tokenizer with
// a reused destination performs zero allocations per query.
func TestWordTokenizerInterns(t *testing.T) {
	wt := NewWordTokenizer()
	a := wt.Words("SELECT objid FROM PhotoObj")
	b := wt.Words("SELECT ra FROM PhotoObj WHERE objid > 5")
	// Same interned backing: comparing the string headers' data
	// pointers via the intern table is what matters, but == on equal
	// strings is true regardless; assert through the table instead.
	if s, ok := wt.intern["PhotoObj"]; !ok || s != "PhotoObj" {
		t.Fatal("token not interned")
	}
	_ = a
	_ = b

	q := poolCorpus[0]
	dst := make([]string, 0, 64)
	dst = wt.AppendWords(dst[:0], q) // warm
	if allocs := testing.AllocsPerRun(200, func() {
		dst = wt.AppendWords(dst[:0], q)
	}); allocs != 0 {
		t.Errorf("warm AppendWords allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkWords contrasts the allocating tokenizer with the pooled,
// interning variant on a realistic statement (vocabulary-building
// access pattern: same queries and token shapes over and over).
func BenchmarkWords(b *testing.B) {
	q := poolCorpus[0]
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Words(q)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		wt := NewWordTokenizer()
		dst := make([]string, 0, 64)
		dst = wt.AppendWords(dst[:0], q)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = wt.AppendWords(dst[:0], q)
		}
	})
}
