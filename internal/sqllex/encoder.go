package sqllex

import (
	"unicode"
	"unicode/utf8"
)

// Encoder fuses tokenization and vocabulary encoding into one
// allocation-free pipeline: it never materializes the intermediate
// []string token sequence, looking ids up directly from reusable rune
// and byte scratch instead. It produces exactly the ids of
//
//	vocab.Encode(Words(query), maxLen)   // word granularity
//	vocab.Encode(Chars(query), maxLen)   // character granularity
//
// (the word path shares scanWords with Words, so the two pipelines
// cannot drift apart). An Encoder owns its scratch and is therefore
// not safe for concurrent use; serving replicas each get their own.
type Encoder struct {
	vocab  *Vocabulary
	word   bool
	maxLen int

	ids   []int
	runes []rune // decoded query (word mode)
	lit   []rune // normalized-literal scratch (word mode)
	key   []byte // UTF-8 scratch for vocabulary lookups
	emit  func(tok []rune, s string) bool
}

// NewEncoder builds an encoder for the vocabulary at the given
// granularity. maxLen > 0 truncates every encoded sequence to maxLen
// ids (the models' fixed input budget); the scan stops as soon as the
// cap is reached.
func NewEncoder(vocab *Vocabulary, word bool, maxLen int) *Encoder {
	e := &Encoder{vocab: vocab, word: word, maxLen: maxLen}
	if word {
		// Bound once so the per-call scan allocates no closure.
		e.emit = func(tok []rune, s string) bool {
			var id int
			if tok != nil {
				id = e.idOfRunes(tok)
			} else {
				id = e.vocab.ID(s)
			}
			e.ids = append(e.ids, id)
			return e.maxLen <= 0 || len(e.ids) < e.maxLen
		}
	}
	return e
}

// Encode tokenizes and encodes query. The returned slice is owned by
// the Encoder and valid only until the next Encode call.
func (e *Encoder) Encode(query string) []int {
	e.ids = e.ids[:0]
	if e.word {
		runes := e.runes[:0]
		for _, r := range query {
			runes = append(runes, r)
		}
		e.runes = runes
		scanWords(runes, &e.lit, e.emit)
		return e.ids
	}
	for _, r := range query {
		if unicode.IsSpace(r) {
			continue
		}
		if e.maxLen > 0 && len(e.ids) >= e.maxLen {
			break
		}
		e.ids = append(e.ids, e.idOfRune(r))
	}
	return e.ids
}

// idOfRune looks up a single-character token without allocating.
func (e *Encoder) idOfRune(r rune) int {
	if r >= 0 && r < 128 {
		return e.vocab.ID(asciiTokens[r])
	}
	e.key = utf8.AppendRune(e.key[:0], r)
	return e.idOfKey()
}

// idOfRunes looks up a multi-rune token without allocating, going
// through the byte scratch so the map access needs no string
// conversion allocation.
func (e *Encoder) idOfRunes(tok []rune) int {
	key := e.key[:0]
	for _, r := range tok {
		key = utf8.AppendRune(key, r)
	}
	e.key = key
	return e.idOfKey()
}

func (e *Encoder) idOfKey() int {
	// The string([]byte) conversion in a map index does not allocate.
	if id, ok := e.vocab.index[string(e.key)]; ok {
		return id
	}
	return 0
}
