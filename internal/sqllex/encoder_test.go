package sqllex

import (
	"testing"
)

// encoderCorpus exercises every tokenizer branch: identifiers, digits,
// hex ids, scientific notation, string literals with escaped quotes and
// digit runs, quoted/bracketed identifiers, one- and two-character
// operators, unicode, and pathological inputs.
var encoderCorpus = []string{
	"SELECT p.objid, p.ra FROM PhotoObj AS p WHERE p.ra BETWEEN 150 AND 152",
	"select top 10 * from SpecObj where z > 0.5e-3 and objid = 0x112d075f80360018",
	"SELECT name FROM users WHERE note = 'it''s 42 degrees' AND id <= 7",
	`SELECT "weird col", [bracketed name] FROM t WHERE a <> b OR c != d`,
	"/* comment */ SELECT a || b -- trailing",
	"   ",
	"",
	"π = 3.14159 — ünïcode ≤ test",
	"'unterminated literal with 123",
	"SELECT 1e5, 2E+10, 0X1f, 9.9.9",
	"a<=b>=c<>d!=e||f--g/*h*/i",
}

// TestEncoderMatchesTokenizeEncode checks the fused Encoder pipeline
// produces exactly the ids of the two-step tokenize+encode pipeline it
// replaces, for both granularities and several length caps.
func TestEncoderMatchesTokenizeEncode(t *testing.T) {
	// Build vocabularies from a subset so some tokens are OOV.
	var charSeqs, wordSeqs [][]string
	for _, q := range encoderCorpus[:6] {
		charSeqs = append(charSeqs, Chars(q))
		wordSeqs = append(wordSeqs, Words(q))
	}
	charVocab := BuildVocabulary(charSeqs, 0)
	wordVocab := BuildVocabulary(wordSeqs, 40)
	for _, maxLen := range []int{0, 5, 60} {
		charEnc := NewEncoder(charVocab, false, maxLen)
		wordEnc := NewEncoder(wordVocab, true, maxLen)
		for _, q := range encoderCorpus {
			wantChar := charVocab.Encode(Chars(q), maxLen)
			gotChar := charEnc.Encode(q)
			if !equalInts(wantChar, gotChar) {
				t.Fatalf("char maxLen=%d %q:\n got %v\nwant %v", maxLen, q, gotChar, wantChar)
			}
			wantWord := wordVocab.Encode(Words(q), maxLen)
			gotWord := wordEnc.Encode(q)
			if !equalInts(wantWord, gotWord) {
				t.Fatalf("word maxLen=%d %q:\n got %v\nwant %v", maxLen, q, gotWord, wantWord)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEncoderAllocFree checks the warm fused pipeline allocates
// nothing for either granularity.
func TestEncoderAllocFree(t *testing.T) {
	var charSeqs, wordSeqs [][]string
	for _, q := range encoderCorpus {
		charSeqs = append(charSeqs, Chars(q))
		wordSeqs = append(wordSeqs, Words(q))
	}
	q := encoderCorpus[1]
	for _, tc := range []struct {
		name string
		enc  *Encoder
	}{
		{"chars", NewEncoder(BuildVocabulary(charSeqs, 0), false, 80)},
		{"words", NewEncoder(BuildVocabulary(wordSeqs, 0), true, 40)},
	} {
		tc.enc.Encode(q) // warm the scratch
		if allocs := testing.AllocsPerRun(100, func() { tc.enc.Encode(q) }); allocs != 0 {
			t.Errorf("%s: Encode allocs/op = %v, want 0", tc.name, allocs)
		}
	}
}

// TestCharsInterned checks single-character tokens come from the
// interned ASCII table (no per-token string allocation) and keep the
// exact previous values.
func TestCharsInterned(t *testing.T) {
	toks := Chars("ab")
	if len(toks) != 2 || toks[0] != "a" || toks[1] != "b" {
		t.Fatalf("Chars = %v", toks)
	}
	// Interned: the same token value must be the identical string
	// header data (cheap identity check via map of backing pointers is
	// overkill — compare against the table directly).
	if &asciiTokens['a'] == nil || toks[0] != asciiTokens['a'] {
		t.Fatal("token not interned")
	}
	spaced := CharsWithSpace("a b")
	if len(spaced) != 3 || spaced[1] != " " {
		t.Fatalf("CharsWithSpace = %v", spaced)
	}
}
