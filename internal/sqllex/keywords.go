package sqllex

import "strings"

// Keyword classes used by the parser and the statement-type detector.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "TOP": true,
	"DISTINCT": true, "ALL": true, "AS": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "FULL": true, "OUTER": true, "CROSS": true,
	"ON": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "EXISTS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"INTO": true, "VALUES": true, "INSERT": true, "UPDATE": true,
	"DELETE": true, "SET": true, "CREATE": true, "DROP": true, "ALTER": true,
	"TABLE": true, "VIEW": true, "INDEX": true, "EXECUTE": true, "EXEC": true,
	"DECLARE": true, "TRUNCATE": true, "COUNT": true, "LIMIT": true,
	"OFFSET": true, "WITH": true,
}

// IsKeyword reports whether tok (case-insensitive) is a SQL keyword.
func IsKeyword(tok string) bool {
	return sqlKeywords[strings.ToUpper(tok)]
}

// aggregateFunctions are the built-in aggregates recognized for the
// nested-aggregation structural property (Section 4.3.1, property 10).
var aggregateFunctions = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"STDEV": true, "STDEVP": true, "VAR": true, "VARP": true,
}

// IsAggregateFunction reports whether name is a SQL aggregate function.
func IsAggregateFunction(name string) bool {
	return aggregateFunctions[strings.ToUpper(name)]
}

// StatementType classifies the leading verb of a raw statement. The
// workload analysis (Section 4.3.1) reports the breakdown of SELECT vs
// EXECUTE/CREATE/DROP/UPDATE/ALTER and combinations.
func StatementType(query string) string {
	toks := Words(query)
	for _, t := range toks {
		u := strings.ToUpper(t)
		switch u {
		case "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP",
			"ALTER", "EXECUTE", "EXEC", "DECLARE", "TRUNCATE", "WITH":
			if u == "EXEC" {
				return "EXECUTE"
			}
			if u == "WITH" {
				return "SELECT"
			}
			return u
		case "--", "/*":
			continue
		}
		// First token is not a recognized verb: junk/natural language.
		return "OTHER"
	}
	return "EMPTY"
}
