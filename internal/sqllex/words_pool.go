package sqllex

import "unicode/utf8"

// WordTokenizer is the pooled, interning variant of Words for bulk
// tokenization (vocabulary building, TF-IDF featurization over a whole
// training set — the last allocation hot spot of the word pipeline).
// It shares scanWords with Words, so the token streams are identical;
// the difference is memory behavior: every token string is interned in
// the tokenizer's table, so a token allocates once on first sight and
// never again, and all scan scratch is reused across calls. A warm
// tokenizer with a capacity-sufficient destination slice performs zero
// allocations per query.
//
// A WordTokenizer owns its scratch and intern table and is not safe
// for concurrent use; bulk pipelines create one per pass (the table's
// lifetime — and memory — then matches the corpus walk that needs it).
type WordTokenizer struct {
	runes  []rune            // decoded query scratch
	lit    []rune            // normalized-literal scratch
	key    []byte            // UTF-8 scratch for intern lookups
	intern map[string]string // canonical token strings
	out    []string          // destination, borrowed during one call
	emit   func(tok []rune, s string) bool
}

// NewWordTokenizer builds an empty tokenizer.
func NewWordTokenizer() *WordTokenizer {
	t := &WordTokenizer{intern: make(map[string]string)}
	// Bound once so the per-call scan allocates no closure.
	t.emit = func(tok []rune, s string) bool {
		if tok != nil {
			s = t.internRunes(tok)
		}
		t.out = append(t.out, s)
		return true
	}
	return t
}

// AppendWords appends query's word tokens to dst and returns the
// extended slice. The token stream is exactly Words(query); token
// strings are shared with every other query the tokenizer has seen.
func (t *WordTokenizer) AppendWords(dst []string, query string) []string {
	runes := t.runes[:0]
	for _, r := range query {
		runes = append(runes, r)
	}
	t.runes = runes
	t.out = dst
	scanWords(runes, &t.lit, t.emit)
	out := t.out
	t.out = nil // do not retain the caller's backing array
	return out
}

// Words tokenizes query into a freshly allocated (exact-size is not
// guaranteed) token slice, reusing scratch and interned strings.
func (t *WordTokenizer) Words(query string) []string {
	return t.AppendWords(make([]string, 0, len(query)/4+4), query)
}

// internRunes returns the canonical string for a multi-rune token,
// allocating only the first time the token is seen.
func (t *WordTokenizer) internRunes(tok []rune) string {
	key := t.key[:0]
	for _, r := range tok {
		key = utf8.AppendRune(key, r)
	}
	t.key = key
	// The string([]byte) conversion in a map index does not allocate.
	if s, ok := t.intern[string(key)]; ok {
		return s
	}
	s := string(key)
	t.intern[s] = s
	return s
}
