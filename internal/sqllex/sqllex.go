// Package sqllex provides tokenizers for SQL query text.
//
// The paper (Definition 1) models a query as a sequence of tokens drawn
// from one of two vocabularies: characters or words. Word-level
// tokenization replaces runs of digits with a <DIGIT> token to control
// vocabulary growth (Section 4.4.1). Both tokenizers must be robust to
// arbitrary input: real workloads such as SDSS contain entries ranging
// from valid SQL to random natural-language text.
package sqllex

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// DigitToken is the placeholder substituted for numeric literals in
// word-level tokenization, per Section 4.4.1 of the paper.
const DigitToken = "<DIGIT>"

// UnknownToken is the placeholder used by vocabularies for
// out-of-vocabulary tokens.
const UnknownToken = "<UNK>"

// asciiTokens interns the single-character token strings of the ASCII
// range, so character-level tokenization and single-character operator
// tokens do not allocate a fresh string per token.
var asciiTokens = func() [128]string {
	var t [128]string
	for i := range t {
		t[i] = string(rune(i))
	}
	return t
}()

// charToken returns the canonical (interned for ASCII) single-character
// token string for r.
func charToken(r rune) string {
	if r >= 0 && r < 128 {
		return asciiTokens[r]
	}
	return string(r)
}

// Chars splits a query into character-level tokens. Whitespace runs are
// collapsed and dropped, matching the paper's character counting
// convention ("48 tokens at the character level (excluding spaces)").
// Token strings are interned for the ASCII range.
func Chars(query string) []string {
	tokens := make([]string, 0, len(query))
	for _, r := range query {
		if unicode.IsSpace(r) {
			continue
		}
		tokens = append(tokens, charToken(r))
	}
	return tokens
}

// CharsWithSpace splits a query into character tokens keeping a single
// space token between non-space runs. CNN models benefit from the word
// boundary signal. Token strings are interned for the ASCII range.
func CharsWithSpace(query string) []string {
	tokens := make([]string, 0, len(query))
	pendingSpace := false
	for _, r := range query {
		if unicode.IsSpace(r) {
			pendingSpace = len(tokens) > 0
			continue
		}
		if pendingSpace {
			tokens = append(tokens, asciiTokens[' '])
			pendingSpace = false
		}
		tokens = append(tokens, charToken(r))
	}
	return tokens
}

// wordScratch is the reusable state of one word-tokenizer run: the
// decoded rune buffer plus the normalized-literal scratch.
type wordScratch struct {
	runes, lit []rune
}

// wordScratchPool recycles tokenizer scratch so repeated tokenization
// (workload generation, feature extraction, vocabulary building) stops
// re-allocating it per query.
var wordScratchPool = sync.Pool{
	New: func() any {
		return &wordScratch{runes: make([]rune, 0, 256)}
	},
}

// Words splits a query into word-level tokens. Identifiers and keywords
// become single tokens; punctuation and operators are tokens of their
// own; numeric literals are replaced by DigitToken. SQL string literals
// are kept as single tokens (their content is usually a constant and is
// digit-normalized as well).
func Words(query string) []string {
	ws := wordScratchPool.Get().(*wordScratch)
	runes := ws.runes[:0]
	for _, r := range query {
		runes = append(runes, r)
	}
	defer func() {
		ws.runes = runes
		wordScratchPool.Put(ws)
	}()
	// Word tokens run ~4 characters on average in SQL text; pre-size to
	// avoid growth reallocations on typical statements.
	tokens := make([]string, 0, len(runes)/4+4)
	scanWords(runes, &ws.lit, func(tok []rune, s string) bool {
		if tok != nil {
			s = string(tok)
		}
		tokens = append(tokens, s)
		return true
	})
	return tokens
}

// scanWords runs the word tokenizer over runes, invoking emit once per
// token, in order. Each token arrives either as a rune slice (tok) or,
// when it has a canonical interned form (DigitToken, operators,
// single-character punctuation), as a string; exactly one of the two is
// set. tok may alias runes or *lit and is only valid during the call.
// lit is caller-owned scratch for normalized string literals. emit
// returns false to stop the scan early (e.g. when an encoder hit its
// length cap). Words and Encoder share this scanner so the string and
// id pipelines can never drift apart.
func scanWords(runes []rune, lit *[]rune, emit func(tok []rune, s string) bool) {
	n := len(runes)
	i := 0
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case isIdentStart(r):
			j := i
			for j < n && isIdentPart(runes[j]) {
				j++
			}
			if !emit(runes[i:j], "") {
				return
			}
			i = j
		case unicode.IsDigit(r):
			// Hex constants such as SDSS object ids (0x112d075f80360018).
			if r == '0' && i+1 < n && (runes[i+1] == 'x' || runes[i+1] == 'X') {
				j := i + 2
				for j < n && isHexDigit(runes[j]) {
					j++
				}
				if !emit(nil, DigitToken) {
					return
				}
				i = j
				continue
			}
			j := i
			for j < n && (unicode.IsDigit(runes[j]) || runes[j] == '.' ||
				((runes[j] == 'e' || runes[j] == 'E') && j+1 < n && (unicode.IsDigit(runes[j+1]) || runes[j+1] == '+' || runes[j+1] == '-')) ||
				((runes[j] == '+' || runes[j] == '-') && j > i && (runes[j-1] == 'e' || runes[j-1] == 'E'))) {
				j++
			}
			if !emit(nil, DigitToken) {
				return
			}
			i = j
		case r == '\'':
			j := i + 1
			for j < n {
				if runes[j] == '\'' {
					if j+1 < n && runes[j+1] == '\'' { // escaped quote
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			if !emit(normalizeLiteralRunes(runes[i:j], lit), "") {
				return
			}
			i = j
		case r == '"' || r == '[':
			close := '"'
			if r == '[' {
				close = ']'
			}
			j := i + 1
			for j < n && runes[j] != close {
				j++
			}
			if j < n {
				j++
			}
			if !emit(runes[i:j], "") {
				return
			}
			i = j
		default:
			// Multi-character operators first.
			if i+1 < n {
				if op := twoCharOp(r, runes[i+1]); op != "" {
					if !emit(nil, op) {
						return
					}
					i += 2
					continue
				}
			}
			if !emit(nil, charToken(r)) {
				return
			}
			i++
		}
	}
}

// twoCharOp returns the interned two-character operator starting with
// (a, b), or "" when the pair is not an operator.
func twoCharOp(a, b rune) string {
	switch a {
	case '<':
		if b == '=' {
			return "<="
		}
		if b == '>' {
			return "<>"
		}
	case '>':
		if b == '=' {
			return ">="
		}
	case '!':
		if b == '=' {
			return "!="
		}
	case '|':
		if b == '|' {
			return "||"
		}
	case '-':
		if b == '-' {
			return "--"
		}
	case '/':
		if b == '*' {
			return "/*"
		}
	case '*':
		if b == '/' {
			return "*/"
		}
	}
	return ""
}

// normalizeLiteralRunes replaces digit runs inside a quoted string
// literal with a '#' marker so that constant-only variations of the
// same template map to the same token, writing the result into *dst
// (grown as needed) and returning it.
func normalizeLiteralRunes(litRunes []rune, dst *[]rune) []rune {
	out := (*dst)[:0]
	inDigits := false
	for _, r := range litRunes {
		if unicode.IsDigit(r) {
			if !inDigits {
				out = append(out, '#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		out = append(out, r)
	}
	*dst = out
	return out
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@' || r == '#'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '@' || r == '#'
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

// NGrams returns all n-grams (as joined strings) of the token sequence
// for every order in [1, maxN]. Per Section 5.1 the traditional models
// use bag-of-n-grams up to 5-grams.
func NGrams(tokens []string, maxN int) []string {
	if maxN < 1 {
		return nil
	}
	var grams []string
	for n := 1; n <= maxN; n++ {
		if len(tokens) < n {
			break
		}
		for i := 0; i+n <= len(tokens); i++ {
			grams = append(grams, strings.Join(tokens[i:i+n], "\x1f"))
		}
	}
	return grams
}

// Vocabulary maps tokens to dense integer ids. Index 0 is reserved for
// the unknown token.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary creates a vocabulary whose id 0 is UnknownToken.
func NewVocabulary() *Vocabulary {
	v := &Vocabulary{index: make(map[string]int)}
	v.Add(UnknownToken)
	return v
}

// Add inserts a token, returning its id. Adding an existing token is a
// no-op that returns the existing id.
func (v *Vocabulary) Add(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	id := len(v.words)
	v.index[tok] = id
	v.words = append(v.words, tok)
	return id
}

// ID returns the id for tok, or 0 (unknown) if absent.
func (v *Vocabulary) ID(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	return 0
}

// Contains reports whether tok is in the vocabulary.
func (v *Vocabulary) Contains(tok string) bool {
	_, ok := v.index[tok]
	return ok
}

// Token returns the token string for an id.
func (v *Vocabulary) Token(id int) string {
	if id < 0 || id >= len(v.words) {
		return UnknownToken
	}
	return v.words[id]
}

// Size returns the number of tokens including UnknownToken.
func (v *Vocabulary) Size() int { return len(v.words) }

// Tokens returns the vocabulary's tokens in id order (index 0 is
// UnknownToken). The returned slice is shared with the vocabulary and
// must not be mutated; it is the serialization surface of a trained
// model's encoder state.
func (v *Vocabulary) Tokens() []string { return v.words }

// VocabularyFromTokens rebuilds a vocabulary from an id-ordered token
// list, the inverse of Tokens. The list must start with UnknownToken
// and contain no duplicates — the invariants every built vocabulary
// holds — so a vocabulary decoded from a stored artifact encodes
// statements exactly like the one that was saved.
func VocabularyFromTokens(tokens []string) (*Vocabulary, error) {
	if len(tokens) == 0 || tokens[0] != UnknownToken {
		return nil, fmt.Errorf("sqllex: vocabulary must start with the unknown token %q", UnknownToken)
	}
	v := &Vocabulary{index: make(map[string]int, len(tokens))}
	for _, tok := range tokens {
		if _, dup := v.index[tok]; dup {
			return nil, fmt.Errorf("sqllex: duplicate vocabulary token %q", tok)
		}
		v.index[tok] = len(v.words)
		v.words = append(v.words, tok)
	}
	return v, nil
}

// Encode maps tokens to ids, truncating to maxLen when maxLen > 0. The
// result is freshly allocated at its exact final size; hot paths that
// can recycle the output should use EncodeInto.
func (v *Vocabulary) Encode(tokens []string, maxLen int) []int {
	n := encodeLen(len(tokens), maxLen)
	return v.encode(tokens, make([]int, 0, n), n)
}

// EncodeInto encodes into dst's backing array (growing it only when
// capacity is insufficient) and returns the encoded slice. The result
// aliases dst and is only valid until the next EncodeInto call with the
// same buffer.
func (v *Vocabulary) EncodeInto(tokens []string, maxLen int, dst []int) []int {
	return v.encode(tokens, dst[:0], encodeLen(len(tokens), maxLen))
}

func encodeLen(n, maxLen int) int {
	if maxLen > 0 && n > maxLen {
		return maxLen
	}
	return n
}

func (v *Vocabulary) encode(tokens []string, ids []int, n int) []int {
	for i := 0; i < n; i++ {
		ids = append(ids, v.ID(tokens[i]))
	}
	return ids
}

// BuildVocabulary constructs a vocabulary from token sequences keeping
// the maxSize most frequent tokens (0 means unbounded). Ties are broken
// by first appearance for determinism.
func BuildVocabulary(sequences [][]string, maxSize int) *Vocabulary {
	type tokCount struct {
		tok   string
		count int
		first int
	}
	counts := make(map[string]*tokCount)
	order := 0
	for _, seq := range sequences {
		for _, tok := range seq {
			tc, ok := counts[tok]
			if !ok {
				tc = &tokCount{tok: tok, first: order}
				counts[tok] = tc
				order++
			}
			tc.count++
		}
	}
	all := make([]*tokCount, 0, len(counts))
	for _, tc := range counts {
		all = append(all, tc)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].first < all[j].first
	})
	v := NewVocabulary()
	for _, tc := range all {
		if maxSize > 0 && v.Size() >= maxSize {
			break
		}
		v.Add(tc.tok)
	}
	return v
}
