package sqllex

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCharsExcludesSpaces(t *testing.T) {
	got := Chars("SELECT *")
	want := []string{"S", "E", "L", "E", "C", "T", "*"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Chars = %v, want %v", got, want)
	}
}

func TestCharsPaperExample(t *testing.T) {
	// The paper's Figure 2a query has 48 character tokens excluding
	// spaces: "SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018".
	q := "SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018"
	if got := len(Chars(q)); got != 48 {
		t.Fatalf("len(Chars) = %d, want 48", got)
	}
}

func TestCharsWithSpaceCollapsesRuns(t *testing.T) {
	got := CharsWithSpace("a   b")
	want := []string{"a", " ", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CharsWithSpace = %v, want %v", got, want)
	}
}

func TestCharsWithSpaceTrims(t *testing.T) {
	got := CharsWithSpace("  ab ")
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CharsWithSpace = %v, want %v", got, want)
	}
}

func TestWordsBasic(t *testing.T) {
	got := Words("SELECT * FROM PhotoTag WHERE objId=5")
	want := []string{"SELECT", "*", "FROM", "PhotoTag", "WHERE", "objId", "=", DigitToken}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsPaperExampleTokenCount(t *testing.T) {
	// Figure 2a has 8 word-level tokens.
	q := "SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018"
	if got := len(Words(q)); got != 8 {
		t.Fatalf("len(Words) = %d, want 8: %v", got, Words(q))
	}
}

func TestWordsHexLiteral(t *testing.T) {
	got := Words("objId=0x112d075f80360018")
	want := []string{"objId", "=", DigitToken}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsFloatAndScientific(t *testing.T) {
	got := Words("ra BETWEEN 156.519031-0.2 AND 1e-3")
	want := []string{"ra", "BETWEEN", DigitToken, "-", DigitToken, "AND", DigitToken}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsStringLiteral(t *testing.T) {
	got := Words("flags & dbo.fPhotoFlags('BLENDED') > 0")
	want := []string{"flags", "&", "dbo", ".", "fPhotoFlags", "(", "'BLENDED'", ")", ">", DigitToken}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsEscapedQuote(t *testing.T) {
	got := Words("name = 'O''Brien'")
	want := []string{"name", "=", "'O''Brien'"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsLiteralDigitNormalization(t *testing.T) {
	a := Words("x = 'id 123'")
	b := Words("x = 'id 456'")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("literals with different digits should normalize equal: %v vs %v", a, b)
	}
}

func TestWordsBracketIdentifier(t *testing.T) {
	got := Words("SELECT [my col] FROM t")
	want := []string{"SELECT", "[my col]", "FROM", "t"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsOperators(t *testing.T) {
	got := Words("a<=b AND c<>d")
	want := []string{"a", "<=", "b", "AND", "c", "<>", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestWordsEmptyAndJunk(t *testing.T) {
	if got := Words(""); len(got) != 0 {
		t.Fatalf("Words(\"\") = %v, want empty", got)
	}
	got := Words("how do I find galaxies?")
	if len(got) == 0 {
		t.Fatal("junk text should still tokenize")
	}
}

func TestNGrams(t *testing.T) {
	grams := NGrams([]string{"a", "b", "c"}, 2)
	want := []string{"a", "b", "c", "a\x1fb", "b\x1fc"}
	if !reflect.DeepEqual(grams, want) {
		t.Fatalf("NGrams = %v, want %v", grams, want)
	}
}

func TestNGramsShortSequence(t *testing.T) {
	grams := NGrams([]string{"a"}, 5)
	if !reflect.DeepEqual(grams, []string{"a"}) {
		t.Fatalf("NGrams = %v", grams)
	}
}

func TestNGramsZero(t *testing.T) {
	if got := NGrams([]string{"a"}, 0); got != nil {
		t.Fatalf("NGrams maxN=0 = %v, want nil", got)
	}
}

func TestVocabularyRoundTrip(t *testing.T) {
	v := NewVocabulary()
	id := v.Add("SELECT")
	if id != 1 {
		t.Fatalf("first Add id = %d, want 1", id)
	}
	if v.ID("SELECT") != 1 || v.Token(1) != "SELECT" {
		t.Fatal("round trip failed")
	}
	if v.ID("missing") != 0 {
		t.Fatal("missing token should map to 0")
	}
	if v.Token(99) != UnknownToken {
		t.Fatal("out-of-range Token should be UnknownToken")
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
}

func TestVocabularyAddIdempotent(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("x")
	b := v.Add("x")
	if a != b {
		t.Fatalf("Add not idempotent: %d vs %d", a, b)
	}
}

func TestBuildVocabularyFrequencyOrder(t *testing.T) {
	seqs := [][]string{{"a", "b", "a"}, {"a", "c"}}
	v := BuildVocabulary(seqs, 3)
	// maxSize 3 = UNK + two most frequent: a (3), then b (first seen).
	if v.Size() != 3 {
		t.Fatalf("Size = %d, want 3", v.Size())
	}
	if !v.Contains("a") || !v.Contains("b") {
		t.Fatalf("expected a and b in vocabulary")
	}
	if v.Contains("c") {
		t.Fatal("c should have been cut by maxSize")
	}
}

func TestBuildVocabularyUnbounded(t *testing.T) {
	seqs := [][]string{{"a", "b", "c"}}
	v := BuildVocabulary(seqs, 0)
	if v.Size() != 4 {
		t.Fatalf("Size = %d, want 4", v.Size())
	}
}

func TestEncodeTruncates(t *testing.T) {
	v := NewVocabulary()
	v.Add("a")
	ids := v.Encode([]string{"a", "a", "a"}, 2)
	if len(ids) != 2 {
		t.Fatalf("len = %d, want 2", len(ids))
	}
}

func TestStatementType(t *testing.T) {
	cases := []struct {
		q, want string
	}{
		{"SELECT * FROM t", "SELECT"},
		{"select top 10 * from t", "SELECT"},
		{"  UPDATE t SET x=1", "UPDATE"},
		{"EXEC sp_help", "EXECUTE"},
		{"EXECUTE sp_help", "EXECUTE"},
		{"CREATE TABLE t (x int)", "CREATE"},
		{"DROP TABLE t", "DROP"},
		{"ALTER TABLE t ADD y int", "ALTER"},
		{"WITH cte AS (SELECT 1) SELECT * FROM cte", "SELECT"},
		{"hello world", "OTHER"},
		{"", "EMPTY"},
		{"   ", "EMPTY"},
	}
	for _, c := range cases {
		if got := StatementType(c.q); got != c.want {
			t.Errorf("StatementType(%q) = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("SELECT") {
		t.Fatal("SELECT should be a keyword in any case")
	}
	if IsKeyword("PhotoObj") {
		t.Fatal("PhotoObj is not a keyword")
	}
}

func TestIsAggregateFunction(t *testing.T) {
	if !IsAggregateFunction("min") || !IsAggregateFunction("COUNT") {
		t.Fatal("min/COUNT are aggregates")
	}
	if IsAggregateFunction("fPhotoFlags") {
		t.Fatal("fPhotoFlags is not an aggregate")
	}
}

// Property: word tokens never contain raw digits (they are normalized).
func TestWordsNoRawDigitsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Words(s) {
			if tok == DigitToken || strings.HasPrefix(tok, "'") ||
				strings.HasPrefix(tok, "\"") || strings.HasPrefix(tok, "[") {
				continue
			}
			// Identifiers may contain digits (e.g. col1); standalone
			// numeric tokens must not survive.
			if len(tok) > 0 && tok[0] >= '0' && tok[0] <= '9' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chars output joined equals input with spaces removed.
func TestCharsPreservesContentProperty(t *testing.T) {
	f := func(s string) bool {
		joined := strings.Join(Chars(s), "")
		stripped := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\v' || r == '\f' {
				return -1
			}
			return r
		}, s)
		// Only compare when s has no exotic unicode whitespace that
		// strings.Map above does not strip.
		for _, r := range stripped {
			if r != ' ' && isUnicodeSpace(r) {
				return true
			}
		}
		return joined == stripped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func isUnicodeSpace(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '\v', '\f':
		return false
	}
	return strings.ContainsRune("                 　", r)
}

// Property: tokenizers never panic on arbitrary input.
func TestTokenizersTotalProperty(t *testing.T) {
	f := func(s string) bool {
		_ = Chars(s)
		_ = CharsWithSpace(s)
		_ = Words(s)
		_ = StatementType(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
