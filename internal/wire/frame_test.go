package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/service"
)

func testPrediction() service.Prediction {
	return service.Prediction{
		Name: "m", Version: 3, Classification: true, Class: 1,
		Probs: []float64{0.25, 0.5, 0.25},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello wire")
	data := AppendFrame(nil, MsgPredict, 42, payload)
	data = AppendFrame(data, MsgError, 43, nil)

	h, p, rest, err := DecodeFrame(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgPredict || h.ID != 42 || h.Len != len(payload) || !bytes.Equal(p, payload) {
		t.Fatalf("frame 1 = %+v payload %q", h, p)
	}
	h, p, rest, err = DecodeFrame(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgError || h.ID != 43 || h.Len != 0 || len(p) != 0 {
		t.Fatalf("frame 2 = %+v payload %q", h, p)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestBeginEndFrame(t *testing.T) {
	buf := AppendFrame(nil, MsgHealthz, 1, nil) // prior frame in the buffer
	start := len(buf)
	buf = beginFrame(buf, MsgPredictReply, 7)
	buf = append(buf, "payload bytes"...)
	buf = endFrame(buf, start)

	_, _, rest, err := DecodeFrame(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, p, rest, err := DecodeFrame(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgPredictReply || h.ID != 7 || string(p) != "payload bytes" || len(rest) != 0 {
		t.Fatalf("patched frame = %+v payload %q rest %d", h, p, len(rest))
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid := AppendFrame(nil, MsgPredict, 9, []byte("abc"))

	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:HeaderSize-1], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrFormat},
		{"bad version", corrupt(func(b []byte) { b[4] = 99 }), ErrVersion},
		{"unknown type", corrupt(func(b []byte) { b[5] = 0xEE }), ErrFormat},
		{"reserved bits", corrupt(func(b []byte) { b[6] = 1 }), ErrFormat},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"oversize claim", corrupt(func(b []byte) {
			binary.LittleEndian.PutUint32(b[16:], 1<<30)
		}), ErrTooLarge},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeFrame(tc.data, 1<<20); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestOversizeClaimNoAlloc pins the security property: a header
// claiming a huge payload is rejected before any payload-sized
// allocation, on both the slice and the stream decoder.
func TestOversizeClaimNoAlloc(t *testing.T) {
	evil := AppendFrame(nil, MsgPredict, 1, nil)
	binary.LittleEndian.PutUint32(evil[16:], 1<<31-1)

	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, _, err := DecodeFrame(evil, 1<<20); !errors.Is(err, ErrTooLarge) {
			t.Fatal("oversize claim accepted")
		}
	}); allocs != 0 {
		t.Errorf("DecodeFrame oversize: %.1f allocs/op, want 0", allocs)
	}

	fr := frameReader{r: bytes.NewReader(evil), maxPayload: 1 << 20}
	if _, _, err := fr.next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("frameReader oversize err = %v", err)
	}
	if cap(fr.payload) != 0 {
		t.Fatalf("frameReader allocated %d payload bytes for a rejected claim", cap(fr.payload))
	}
}

func TestFrameReaderStream(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		stream = AppendFrame(stream, MsgPredict, uint64(i), bytes.Repeat([]byte{byte(i)}, i*3))
	}
	fr := frameReader{r: bytes.NewReader(stream), maxPayload: 1 << 20}
	for i := 0; i < 5; i++ {
		h, p, err := fr.next()
		if err != nil {
			t.Fatal(err)
		}
		if h.ID != uint64(i) || len(p) != i*3 {
			t.Fatalf("frame %d: %+v", i, h)
		}
	}
	if _, _, err := fr.next(); err != io.EOF {
		t.Fatalf("at stream end err = %v, want io.EOF", err)
	}

	// A stream ending mid-frame is ErrTruncated, not a silent EOF.
	fr = frameReader{r: bytes.NewReader(stream[:len(stream)-1]), maxPayload: 1 << 20}
	var err error
	for err == nil {
		_, _, err = fr.next()
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-frame end err = %v, want ErrTruncated", err)
	}
}

// FuzzFrameDecode hammers the frame decoder (and, for the binary
// request/reply types, the payload decoders behind it) with corrupt
// input: it must return typed errors, never panic, and never trust a
// corrupt length claim.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, MsgPredict, 1, appendPredictReq(nil, "m", "SELECT 1", 250)))
	f.Add(AppendFrame(nil, MsgPredictBatch, 2, appendPredictBatchReq(nil, "m", []string{"a", "b"}, 0)))
	pr := testPrediction()
	f.Add(AppendFrame(nil, MsgPredictReply, 3, appendPredictReply(nil, &pr)))
	f.Add(AppendFrame(nil, MsgError, 4, appendErrorReply(nil, 429, 1, "queue full")))
	f.Add([]byte("RPW\x01garbage"))
	evil := AppendFrame(nil, MsgPredict, 5, nil)
	binary.LittleEndian.PutUint32(evil[16:], 0xFFFFFFFF)
	f.Add(evil)

	intern := func(b []byte) string { return string(b) }
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, rest, err := DecodeFrame(data, 1<<16)
		if err != nil {
			for _, want := range []error{ErrFormat, ErrVersion, ErrTooLarge, ErrTruncated} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("untyped decode error %v", err)
		}
		if h.Len > 1<<16 || h.Len != len(payload) || len(rest) != len(data)-HeaderSize-h.Len {
			t.Fatalf("inconsistent decode: %+v payload %d rest %d", h, len(payload), len(rest))
		}
		// Re-encoding a valid frame must reproduce the input bytes.
		re := AppendFrame(nil, h.Type, h.ID, payload)
		if !bytes.Equal(re, data[:HeaderSize+h.Len]) {
			t.Fatal("re-encoded frame differs from input")
		}
		// The payload decoders must hold the same never-panic contract.
		switch h.Type {
		case MsgPredict:
			decodePredictReq(payload)
		case MsgPredictBatch:
			decodePredictBatchReq(payload, nil)
		case MsgPredictReply:
			var dst service.Prediction
			decodePredictReply(payload, &dst, nil, intern)
		case MsgPredictBatchReply:
			decodePredictBatchReply(payload, intern)
		case MsgError:
			decodeErrorReply(payload)
		}
	})
}
