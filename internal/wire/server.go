package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
	"unsafe"

	"repro/internal/service"
)

// ServerOptions tunes a wire Server. The zero value is usable.
type ServerOptions struct {
	// MaxPayload caps accepted frame payloads (default
	// DefaultMaxPayload). Frames claiming more are rejected before any
	// payload-sized allocation and the connection is closed.
	MaxPayload int
	// Handlers is the number of persistent request-handler goroutines
	// shared by all connections (default 8). Requests pipelined on one
	// connection execute concurrently across handlers, which is what
	// makes out-of-order replies worth having.
	Handlers int
	// Logf, when set, receives connection-level protocol failures
	// (frame corruption, write errors). Per-request failures are
	// replied to the client, not logged.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over any net.Listener (TCP, unix
// sockets) against the same service.Service the HTTP handler mounts:
// identical registry, admission quotas, typed errors, and panic
// isolation — only the encoding differs.
//
// Each connection gets a read loop that decodes frames into pooled
// jobs; a fixed pool of handler goroutines executes them and writes
// replies directly, so responses leave in completion order (tagged by
// request ID), not arrival order. The warm predict path allocates
// nothing on either side of the socket.
type Server struct {
	svc  *service.Service
	opts ServerOptions

	jobs chan *job
	pool sync.Pool // *job

	// baseCtx parents every request context; canceled on forced
	// shutdown so in-flight predictions unwind promptly.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	handlerWG sync.WaitGroup
	connWG    sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	draining  bool
	started   bool
}

// NewServer builds a wire server over svc.
func NewServer(svc *service.Service, opts ServerOptions) *Server {
	if opts.MaxPayload <= 0 {
		opts.MaxPayload = DefaultMaxPayload
	}
	if opts.Handlers <= 0 {
		opts.Handlers = 8
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		svc:       svc,
		opts:      opts,
		jobs:      make(chan *job),
		baseCtx:   ctx,
		cancelAll: cancel,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*serverConn]struct{}{},
	}
	s.pool.New = func() any { return &job{} }
	return s
}

// Serve accepts connections on ln until the listener fails or the
// server is shut down. It returns nil after a Shutdown, mirroring the
// net/http contract. Serve may be called concurrently on several
// listeners (one TCP, one unix socket).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server is shut down")
	}
	s.listeners[ln] = struct{}{}
	if !s.started {
		s.started = true
		s.handlerWG.Add(s.opts.Handlers)
		for i := 0; i < s.opts.Handlers; i++ {
			go s.handler()
		}
	}
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			delete(s.listeners, ln)
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		c := &serverConn{nc: nc}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Shutdown gracefully drains the server: listeners close, per-
// connection read loops stop (a request caught mid-frame on the socket
// is lost — its client sees a transport error and retries), and every
// request already accepted runs to completion and gets its reply
// before the connection closes. If ctx expires first, in-flight work
// is canceled and connections are torn down hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	started := s.started
	for ln := range s.listeners {
		ln.Close()
	}
	now := time.Now()
	for c := range s.conns {
		c.nc.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(s.jobs)
		if started {
			s.handlerWG.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// serverConn is one accepted connection. Replies from concurrent
// handlers serialize on wmu; inflight tracks jobs between decode and
// reply so the read loop can drain them before closing the socket.
type serverConn struct {
	nc       net.Conn
	wmu      sync.Mutex
	broken   bool
	inflight sync.WaitGroup
}

// write sends one complete frame. A write failure marks the
// connection broken: later replies are dropped (their requests are
// lost with the connection anyway) and the read loop shuts the socket.
func (c *serverConn) write(frame []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.broken {
		return
	}
	if _, err := c.nc.Write(frame); err != nil {
		c.broken = true
	}
}

// serveConn runs one connection's read loop: decode a frame, copy its
// payload into a pooled job, hand it to the handler pool. Frame-level
// corruption (bad magic, unknown version or type, oversize claim)
// means the stream can no longer be trusted to be frame-aligned, so
// the connection closes; a well-framed but malformed payload gets a
// typed error reply and the connection lives on.
func (s *Server) serveConn(c *serverConn) {
	defer s.connWG.Done()
	fr := frameReader{r: c.nc, maxPayload: s.opts.MaxPayload}
	for {
		h, payload, err := fr.next()
		if err != nil {
			if err != io.EOF && !s.isDraining() && s.opts.Logf != nil {
				s.opts.Logf("wire: %s: %v", c.nc.RemoteAddr(), err)
			}
			break
		}
		if h.Type >= MsgError {
			if s.opts.Logf != nil {
				s.opts.Logf("wire: %s: reply type %s in request", c.nc.RemoteAddr(), h.Type)
			}
			break
		}
		j := s.pool.Get().(*job)
		j.conn, j.typ, j.id = c, h.Type, h.ID
		j.in = append(j.in[:0], payload...)
		c.inflight.Add(1)
		s.jobs <- j
	}
	// Handlers still hold jobs from this connection; let them reply
	// before the socket goes away.
	c.inflight.Wait()
	c.nc.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// job carries one decoded request through the handler pool. Its
// buffers (payload copy, reply frame, probability and statement
// scratch) are reused across requests via sync.Pool, which is what
// keeps the warm predict path allocation-free.
type job struct {
	conn *serverConn
	typ  MsgType
	id   uint64
	in   []byte
	out  []byte
	// probs is the PredictInto scratch; the reply encoder copies the
	// values out before the job is recycled.
	probs []float64
	// stmts holds batch statement views into in.
	stmts [][]byte
	// stmtStrs holds the unsafe string headers over stmts for the
	// service call.
	stmtStrs []string
}

// handler executes jobs until the jobs channel closes at shutdown.
func (s *Server) handler() {
	defer s.handlerWG.Done()
	for j := range s.jobs {
		s.handle(j)
		c := j.conn
		j.conn = nil
		s.pool.Put(j)
		c.inflight.Done()
	}
}

// handle runs one request with net/http-equivalent panic isolation: a
// handler panic fails that request with a 500-coded error frame and
// the server keeps serving.
func (s *Server) handle(j *job) {
	defer func() {
		if r := recover(); r != nil {
			s.replyError(j, http.StatusInternalServerError, fmt.Errorf("wire: handler panic: %v", r))
		}
	}()
	switch j.typ {
	case MsgPredict:
		s.handlePredict(j)
	case MsgPredictBatch:
		s.handlePredictBatch(j)
	case MsgStats:
		s.handleStats(j)
	case MsgHealthz:
		s.handleHealthz(j)
	case MsgModels:
		s.replyJSON(j, s.svc.Models())
	case MsgDeploy:
		s.handleDeploy(j)
	case MsgGC:
		s.handleGC(j)
	case MsgIngest:
		s.handleIngest(j)
	default:
		s.replyError(j, http.StatusBadRequest, fmt.Errorf("wire: unhandled request type %s", j.typ))
	}
}

// bstr views b as a string without copying. The view is passed to
// service calls that do not retain the statement past the request
// (serve clears the string on request release), and the backing job
// buffer is not recycled until the reply is written, so the view
// cannot outlive its bytes.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// requestCtx builds the request context from the frame's deadline_ms.
// deadline 0 reuses the server's base context (the allocation-free
// warm path); a positive deadline costs one timer, same as HTTP.
func (s *Server) requestCtx(deadlineMs uint32) (context.Context, context.CancelFunc) {
	if deadlineMs == 0 {
		return s.baseCtx, nil
	}
	return context.WithTimeout(s.baseCtx, time.Duration(deadlineMs)*time.Millisecond)
}

func (s *Server) handlePredict(j *job) {
	model, stmt, deadlineMs, err := decodePredictReq(j.in)
	if err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(deadlineMs)
	pr, err := s.svc.PredictInto(ctx, bstr(model), bstr(stmt), j.probs)
	if cancel != nil {
		cancel()
	}
	if pr.Probs != nil {
		j.probs = pr.Probs // keep the (possibly grown) scratch
	}
	if err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	j.out = beginFrame(j.out[:0], MsgPredictReply, j.id)
	j.out = appendPredictReply(j.out, &pr)
	j.conn.write(endFrame(j.out, 0))
}

func (s *Server) handlePredictBatch(j *job) {
	model, deadlineMs, stmts, err := decodePredictBatchReq(j.in, j.stmts)
	j.stmts = stmts[:0]
	if err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	if len(stmts) == 0 {
		s.replyError(j, http.StatusBadRequest, errors.New("wire: empty statement batch"))
		return
	}
	strs := j.stmtStrs[:0]
	for _, b := range stmts {
		strs = append(strs, bstr(b))
	}
	j.stmtStrs = strs
	ctx, cancel := s.requestCtx(deadlineMs)
	prs, err := s.svc.PredictBatch(ctx, bstr(model), strs)
	if cancel != nil {
		cancel()
	}
	if err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	j.out = beginFrame(j.out[:0], MsgPredictBatchReply, j.id)
	j.out = appendPredictBatchReply(j.out, prs)
	j.conn.write(endFrame(j.out, 0))
}

// statsRequest is the MsgStats JSON payload.
type statsRequest struct {
	Model string `json:"model"`
}

func (s *Server) handleStats(j *job) {
	var req statsRequest
	if err := json.Unmarshal(j.in, &req); err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" {
		s.replyError(j, http.StatusBadRequest, errors.New("wire: stats: model required"))
		return
	}
	snap, err := s.svc.StatsSnapshot(req.Model)
	if err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	s.replyJSON(j, snap)
}

func (s *Server) handleHealthz(j *job) {
	h, ready := s.svc.Health()
	if !ready {
		s.replyError(j, http.StatusServiceUnavailable, errors.New("service warming up"))
		return
	}
	s.replyJSON(j, h)
}

func (s *Server) handleDeploy(j *job) {
	var req service.DeployRequest
	if err := json.Unmarshal(j.in, &req); err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" {
		s.replyError(j, http.StatusBadRequest, errors.New("wire: deploy: model required"))
		return
	}
	if err := s.svc.ValidateDeploy(req.DeployOptions); err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	info, err := s.svc.Deploy(req.Model, req.Version, req.DeployOptions)
	if err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	s.replyJSON(j, info)
}

// gcReply mirrors the HTTP /v1/admin/gc body.
type gcReply struct {
	Results []service.GCResult `json:"results"`
}

func (s *Server) handleGC(j *job) {
	results, err := s.svc.GC()
	if err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	s.replyJSON(j, gcReply{Results: results})
}

func (s *Server) handleIngest(j *job) {
	var req service.IngestRequest
	if err := json.Unmarshal(j.in, &req); err != nil {
		s.replyError(j, http.StatusBadRequest, err)
		return
	}
	if req.Model == "" || req.Statement == "" {
		s.replyError(j, http.StatusBadRequest, errors.New("wire: ingest: model and statement required"))
		return
	}
	if err := s.svc.Observe(req.Model, req.Statement, req.Class, req.Value); err != nil {
		s.replyError(j, service.StatusFor(err), err)
		return
	}
	s.replyJSON(j, service.IngestResponse{OK: true})
}

// replyJSON answers a control-plane request (cold path; allocation is
// fine here).
func (s *Server) replyJSON(j *job, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.replyError(j, http.StatusInternalServerError, err)
		return
	}
	j.out = beginFrame(j.out[:0], MsgJSON, j.id)
	j.out = append(j.out, body...)
	j.conn.write(endFrame(j.out, 0))
}

// replyError sends a typed error frame carrying the same HTTP status
// service.StatusFor assigns and the server's Retry-After pacing hint
// for overload/unavailable, so client-side sentinel mapping, retry,
// and breaker behavior are identical across transports.
func (s *Server) replyError(j *job, status int, err error) {
	retryAfter := 0
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		retryAfter = service.RetryAfterSeconds
	}
	j.out = beginFrame(j.out[:0], MsgError, j.id)
	j.out = appendErrorReply(j.out, status, retryAfter, err.Error())
	j.conn.write(endFrame(j.out, 0))
}
