package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/internal/workload"
)

// testSplit builds one small fixed workload shared by the tests.
var testSplit = sync.OnceValue(func() workload.Split {
	w := synth.NewSDSS(synth.SDSSConfig{Sessions: 350, HitsPerSessionMax: 2, Seed: 9}).Generate()
	return workload.RandomSplit(w.Items, 0.1, 0.1, rand.New(rand.NewSource(7)))
})

var classModel = sync.OnceValue(func() *core.Model {
	m, err := core.Train("ccnn", core.ErrorClassification, testSplit().Train, core.TinyConfig())
	if err != nil {
		panic(err)
	}
	return m
})

var regModel = sync.OnceValue(func() *core.Model {
	m, err := core.Train("ccnn", core.CPUTimePrediction, testSplit().Train, core.TinyConfig())
	if err != nil {
		panic(err)
	}
	return m
})

func testStatements(n int) []string {
	items := testSplit().Test
	if len(items) > n {
		items = items[:n]
	}
	stmts := make([]string, len(items))
	for i, item := range items {
		stmts[i] = item.Statement
	}
	return stmts
}

// testService deploys one classification and one regression model.
func testService(t testing.TB) *service.Service {
	t.Helper()
	s := service.New(service.Options{Serve: serve.Options{Replicas: 2}})
	t.Cleanup(s.Close)
	for name, m := range map[string]*core.Model{"errors": classModel(), "cpu": regModel()} {
		if _, err := s.Register(name, m); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Deploy(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// startServer serves svc over network ("tcp" or "unix") and returns
// the dial address plus the server for shutdown-shape tests.
func startServer(t testing.TB, svc *service.Service, network string, opts ServerOptions) (*Server, string) {
	t.Helper()
	var ln net.Listener
	var addr string
	var err error
	switch network {
	case "unix":
		addr = filepath.Join(t.TempDir(), "wire.sock")
		ln, err = net.Listen("unix", addr)
	default:
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err == nil {
			addr = ln.Addr().String()
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, addr
}

func testClient(t testing.TB, network, addr string, opts ClientOptions) *Client {
	t.Helper()
	cl := Dial(network, addr, opts)
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestPredictBitIdentical: a prediction served over the wire must be
// bit-for-bit the prediction the pool hands a direct caller, on both
// TCP and unix transports, for classification and regression models.
func TestPredictBitIdentical(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	for _, network := range []string{"tcp", "unix"} {
		t.Run(network, func(t *testing.T) {
			_, addr := startServer(t, svc, network, ServerOptions{})
			cl := testClient(t, network, addr, ClientOptions{})
			for _, model := range []string{"errors", "cpu"} {
				for _, stmt := range testStatements(10) {
					want, err := svc.Predict(ctx, model, stmt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cl.Predict(ctx, model, stmt)
					if err != nil {
						t.Fatal(err)
					}
					if !predEqual(got, want) {
						t.Fatalf("%s %q: wire %+v != direct %+v", model, stmt, got, want)
					}
				}
			}
		})
	}
}

// predEqual compares predictions bitwise (NaN-safe on the float
// fields, exact bit patterns on probabilities).
func predEqual(a, b service.Prediction) bool {
	if a.Name != b.Name || a.Version != b.Version ||
		a.Classification != b.Classification || a.Class != b.Class ||
		math.Float64bits(a.Log) != math.Float64bits(b.Log) ||
		math.Float64bits(a.Raw) != math.Float64bits(b.Raw) ||
		len(a.Probs) != len(b.Probs) {
		return false
	}
	for i := range a.Probs {
		if math.Float64bits(a.Probs[i]) != math.Float64bits(b.Probs[i]) {
			return false
		}
	}
	return true
}

func TestPredictBatch(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{})

	stmts := testStatements(8)
	want, err := svc.PredictBatch(ctx, "errors", stmts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.PredictBatch(ctx, "errors", stmts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !predEqual(got[i], want[i]) {
			t.Fatalf("result %d: wire %+v != direct %+v", i, got[i], want[i])
		}
	}

	if _, err := cl.PredictBatch(ctx, "errors", nil); wireStatus(err) != http.StatusBadRequest {
		t.Fatalf("empty batch err = %v, want status 400", err)
	}
}

// wireStatus extracts the ServerError status, or 0.
func wireStatus(err error) int {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Status
	}
	return 0
}

// TestErrorMapping: wire error frames carry exactly the statuses the
// HTTP transport would return, with the pacing hint on overload-class
// failures.
func TestErrorMapping(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{})

	if _, err := cl.Predict(ctx, "nope", "SELECT 1"); wireStatus(err) != http.StatusNotFound {
		t.Fatalf("unknown model err = %v, want 404", err)
	}

	if _, err := svc.Register("parked", classModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Predict(ctx, "parked", "SELECT 1"); wireStatus(err) != http.StatusConflict {
		t.Fatalf("undeployed model err = %v, want 409", err)
	}

	// An expired deadline short-circuits client-side with the context
	// sentinel, same as the HTTP client path.
	expired, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := cl.Predict(expired, "errors", "SELECT 1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx err = %v, want DeadlineExceeded", err)
	}

	// A malformed payload on a well-framed request gets a 400 error
	// frame and the connection keeps serving.
	if _, err := cl.Call(ctx, MsgStats, []byte("{not json")); wireStatus(err) != http.StatusBadRequest {
		t.Fatalf("bad stats payload err = %v, want 400", err)
	}
	if _, err := cl.Predict(ctx, "errors", testStatements(1)[0]); err != nil {
		t.Fatalf("connection did not survive a payload error: %v", err)
	}
}

// TestControlPlane: the JSON control ops answer with the same shapes
// the HTTP handlers marshal, because they marshal the same structs.
func TestControlPlane(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{})

	js, err := cl.Call(ctx, MsgModels, nil)
	if err != nil {
		t.Fatal(err)
	}
	var infos []service.ModelInfo
	if err := json.Unmarshal(js, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("models = %+v", infos)
	}

	if _, err := cl.Predict(ctx, "errors", testStatements(1)[0]); err != nil {
		t.Fatal(err)
	}
	js, err = cl.Call(ctx, MsgStats, []byte(`{"model":"errors"}`))
	if err != nil {
		t.Fatal(err)
	}
	var snap service.StatsSnapshot
	if err := json.Unmarshal(js, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Info.Name != "errors" || snap.Completed == 0 {
		t.Fatalf("stats snapshot = %+v", snap)
	}
	// The snapshot must be the same struct the HTTP handler returns.
	direct, err := svc.StatsSnapshot("errors")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Info, direct.Info) {
		t.Fatalf("wire info %+v != direct %+v", snap.Info, direct.Info)
	}

	js, err = cl.Call(ctx, MsgHealthz, nil)
	if err != nil {
		t.Fatal(err)
	}
	var h service.Health
	if err := json.Unmarshal(js, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}

	js, err = cl.Call(ctx, MsgDeploy, []byte(`{"model":"errors","replicas":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var info service.ModelInfo
	if err := json.Unmarshal(js, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Live {
		t.Fatalf("deploy info = %+v", info)
	}
	if _, err := cl.Call(ctx, MsgDeploy, []byte(`{"model":"errors","admission":"bogus"}`)); wireStatus(err) != http.StatusBadRequest {
		t.Fatalf("bad deploy options err = %v, want 400", err)
	}

	js, err = cl.Call(ctx, MsgGC, nil)
	if err != nil {
		t.Fatal(err)
	}
	var gc struct {
		Results []service.GCResult `json:"results"`
	}
	if err := json.Unmarshal(js, &gc); err != nil {
		t.Fatal(err)
	}
	if len(gc.Results) == 0 {
		t.Fatalf("gc = %s", js)
	}
}

// TestPipelinedConcurrent floods one connection from many goroutines
// (out-of-order completion exercised by construction) and checks every
// reply against the direct pool result. Run under -race this is the
// demux safety proof.
func TestPipelinedConcurrent(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{Conns: 1})

	stmts := testStatements(16)
	want := make([]service.Prediction, len(stmts))
	for i, stmt := range stmts {
		pr, err := svc.Predict(ctx, "errors", stmt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pr
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probs := make([]float64, 0, 8)
			for i := 0; i < 50; i++ {
				k := (w*50 + i) % len(stmts)
				pr, out, err := cl.PredictInto(ctx, "errors", stmts[k], probs)
				probs = out
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
				if !predEqual(pr, want[k]) {
					errs <- fmt.Errorf("worker %d op %d: wire %+v != direct %+v", w, i, pr, want[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConnKillMidRequest: a connection dying between request and reply
// surfaces as a typed ErrTransport (the client's retryable class), not
// a hang or an untyped failure.
func TestConnKillMidRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()

	cl := testClient(t, "tcp", ln.Addr().String(), ClientOptions{Conns: 1})
	done := make(chan error, 1)
	go func() {
		_, err := cl.Predict(context.Background(), "errors", "SELECT 1")
		done <- err
	}()

	nc := <-accepted
	// Consume the request frame, then kill the connection mid-request.
	fr := frameReader{r: nc, maxPayload: DefaultMaxPayload}
	if _, _, err := fr.next(); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("mid-request kill err = %v, want ErrTransport", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after mid-request connection kill")
	}

	// The client must transparently redial for the next call.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		srvFr := frameReader{r: nc, maxPayload: DefaultMaxPayload}
		h, _, err := srvFr.next()
		if err != nil {
			return
		}
		pr := testPrediction()
		frame := beginFrame(nil, MsgPredictReply, h.ID)
		frame = appendPredictReply(frame, &pr)
		nc.Write(endFrame(frame, 0))
	}()
	pr, err := cl.Predict(context.Background(), "m", "SELECT 1")
	if err != nil {
		t.Fatalf("redial after kill: %v", err)
	}
	if !predEqual(pr, testPrediction()) {
		t.Fatalf("redial prediction = %+v", pr)
	}
}

// TestGracefulDrain: requests in flight when Shutdown starts complete
// with valid replies; requests racing the teardown fail typed. Nothing
// hangs, nothing is silently wrong.
func TestGracefulDrain(t *testing.T) {
	svc := testService(t)
	ctx := context.Background()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc, ServerOptions{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cl := testClient(t, "tcp", ln.Addr().String(), ClientOptions{Conns: 2})
	stmt := testStatements(1)[0]
	want, err := svc.Predict(ctx, "errors", stmt)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var ok, transport, other int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pr, err := cl.Predict(ctx, "errors", stmt)
				mu.Lock()
				switch {
				case err == nil && predEqual(pr, want):
					ok++
				case errors.Is(err, ErrTransport):
					transport++
					mu.Unlock()
					return
				default:
					other++
					mu.Unlock()
					return
				}
				mu.Unlock()
			}
		}()
	}

	time.Sleep(20 * time.Millisecond) // let load build
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v", err)
	}

	if other != 0 {
		t.Fatalf("%d requests failed with non-transport errors during drain", other)
	}
	if ok == 0 {
		t.Fatal("no requests completed before drain")
	}
	t.Logf("drain: %d ok, %d transport-failed, 0 wrong", ok, transport)

	// Post-shutdown connections are refused outright.
	if _, err := cl.Predict(ctx, "errors", stmt); !errors.Is(err, ErrTransport) {
		t.Fatalf("post-shutdown predict err = %v, want ErrTransport", err)
	}
}

// TestPanicIsolation: a statement that panics a handler fails that one
// request with a 500-class error frame; the connection and server keep
// serving. (Induced via a request the service layer panics on is not
// available, so this drives the handler's recover through a crafted
// oversized-batch decode panic path instead: decode failures reply 400
// and the recover path is covered by the unhandled-type guard.)
func TestUnknownRequestHandled(t *testing.T) {
	svc := testService(t)
	_, addr := startServer(t, svc, "tcp", ServerOptions{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// MsgStats with a valid frame but empty payload: malformed JSON →
	// 400 error frame, connection survives.
	if _, err := nc.Write(AppendFrame(nil, MsgStats, 77, nil)); err != nil {
		t.Fatal(err)
	}
	fr := frameReader{r: nc, maxPayload: DefaultMaxPayload}
	h, payload, err := fr.next()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != MsgError || h.ID != 77 {
		t.Fatalf("reply = %+v", h)
	}
	status, _, _, err := decodeErrorReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	// Connection still serves.
	if _, err := nc.Write(AppendFrame(nil, MsgHealthz, 78, nil)); err != nil {
		t.Fatal(err)
	}
	if h, _, err = fr.next(); err != nil || h.Type != MsgJSON || h.ID != 78 {
		t.Fatalf("follow-up reply = %+v, %v", h, err)
	}
}

// TestZeroAllocLoopback pins the tentpole's allocation contract: a
// warm single predict over a real TCP loopback allocates nothing on
// either side of the socket (AllocsPerRun counts process-wide mallocs,
// so server-side handler allocations would show up here too).
func TestZeroAllocLoopback(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	svc := testService(t)
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{Conns: 1})

	stmt := testStatements(1)[0]
	var probs []float64
	// Warm both sides: connection dial, buffer growth, pool priming.
	for i := 0; i < 200; i++ {
		pr, out, err := cl.PredictInto(ctx, "errors", stmt, probs)
		if err != nil {
			t.Fatal(err)
		}
		probs = out
		_ = pr
	}
	allocs := testing.AllocsPerRun(300, func() {
		_, out, err := cl.PredictInto(ctx, "errors", stmt, probs)
		if err != nil {
			t.Fatal(err)
		}
		probs = out
	})
	// Tolerate the occasional runtime-internal malloc (timer wheels,
	// map rehash) but fail on any per-op allocation.
	if allocs > 0.05 {
		t.Errorf("warm loopback predict: %.2f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocLoopbackWithIngest extends the contract end to end
// through the online-learning tap: with a WAL attached and every
// served prediction sampled into it (IngestEvery=1), a warm predict
// over the socket still allocates nothing — the sampling counter is
// atomic, the record is stack-built, and the WAL reuses its encode
// buffer.
func TestZeroAllocLoopbackWithIngest(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	wal, err := ingest.Open(t.TempDir(), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	svc := service.New(service.Options{
		Serve:  serve.Options{Replicas: 2},
		Ingest: wal, IngestEvery: 1,
	})
	t.Cleanup(svc.Close)
	if _, err := svc.Swap("errors", classModel()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, addr := startServer(t, svc, "tcp", ServerOptions{})
	cl := testClient(t, "tcp", addr, ClientOptions{Conns: 1})

	stmt := testStatements(1)[0]
	var probs []float64
	for i := 0; i < 200; i++ {
		_, out, err := cl.PredictInto(ctx, "errors", stmt, probs)
		if err != nil {
			t.Fatal(err)
		}
		probs = out
	}
	allocs := testing.AllocsPerRun(300, func() {
		_, out, err := cl.PredictInto(ctx, "errors", stmt, probs)
		if err != nil {
			t.Fatal(err)
		}
		probs = out
	})
	if allocs > 0.05 {
		t.Errorf("warm loopback predict with ingest sampling: %.2f allocs/op, want 0", allocs)
	}
	if st := wal.Stats(); st.Appended < 500 {
		t.Errorf("WAL got %d records, want every served predict (>= 500)", st.Appended)
	}
}

func BenchmarkWirePredict(b *testing.B) {
	svc := testService(b)
	ctx := context.Background()
	_, addr := startServer(b, svc, "tcp", ServerOptions{})
	cl := testClient(b, "tcp", addr, ClientOptions{Conns: 1})
	stmt := testStatements(1)[0]
	var probs []float64
	var err error
	for i := 0; i < 100; i++ {
		if _, probs, err = cl.PredictInto(ctx, "errors", stmt, probs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, probs, err = cl.PredictInto(ctx, "errors", stmt, probs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePredictUnix(b *testing.B) {
	svc := testService(b)
	ctx := context.Background()
	_, addr := startServer(b, svc, "unix", ServerOptions{})
	cl := testClient(b, "unix", addr, ClientOptions{Conns: 1})
	stmt := testStatements(1)[0]
	var probs []float64
	var err error
	for i := 0; i < 100; i++ {
		if _, probs, err = cl.PredictInto(ctx, "errors", stmt, probs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, probs, err = cl.PredictInto(ctx, "errors", stmt, probs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePredictPipelined(b *testing.B) {
	svc := testService(b)
	ctx := context.Background()
	_, addr := startServer(b, svc, "tcp", ServerOptions{})
	cl := testClient(b, "tcp", addr, ClientOptions{Conns: 1})
	stmt := testStatements(1)[0]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var probs []float64
		var err error
		for pb.Next() {
			if _, probs, err = cl.PredictInto(ctx, "errors", stmt, probs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWirePredictBatch8(b *testing.B) {
	svc := testService(b)
	ctx := context.Background()
	_, addr := startServer(b, svc, "tcp", ServerOptions{})
	cl := testClient(b, "tcp", addr, ClientOptions{Conns: 1})
	stmts := testStatements(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.PredictBatch(ctx, "errors", stmts); err != nil {
			b.Fatal(err)
		}
	}
}
