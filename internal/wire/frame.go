// Package wire is the prediction service's binary wire protocol: a
// length-prefixed framed transport over TCP or unix sockets with
// persistent connections, request pipelining, and out-of-order
// responses tagged by a u64 request ID.
//
// The HTTP/JSON front door costs ~10× the inference it carries (PR 7
// measured a 304µs client p50 over a 28µs pool p50): per-request
// header parsing, JSON encode/decode on both sides, and no pipelining.
// This package is the classic database wire-protocol answer — one
// persistent connection, fixed 20-byte frame headers, raw IEEE-754
// payloads for the predict hot path — built with the same
// deterministic binary-codec idioms (little-endian fields,
// length-prefixed strings, sticky-error bounds-checked decode, shape
// validation before any payload-sized allocation) as internal/artifact.
//
// Frame layout (all integers little-endian):
//
//	magic "RPW\x01" (u32) | version u8 | type u8 | reserved u16 = 0 |
//	request id u64 | payload length u32 | payload
//
// Responses may arrive in any order; the request ID ties a reply frame
// to its request. Control-plane messages (models, deploy, stats,
// healthz, gc) carry JSON payloads — they are rare and share their
// struct shapes with the HTTP handlers, so the two transports cannot
// drift. The predict data plane is fully binary and allocation-free
// warm on both sides via per-connection reused buffers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the current protocol version. Both sides reject frames
// from unknown versions with ErrVersion rather than guessing at their
// layout.
const Version = 1

// magic identifies a protocol frame ("RPW" + format generation 1).
var magic = [4]byte{'R', 'P', 'W', 0x01}

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 20

// DefaultMaxPayload is the payload-length cap applied when a Server or
// Client is configured with MaxPayload == 0. A frame claiming more
// than the cap is rejected before any payload-sized allocation.
const DefaultMaxPayload = 16 << 20

// Typed frame decode failures. All are wrapped with context; match
// with errors.Is. A frame-level failure means the byte stream can no
// longer be trusted to be frame-aligned, so both sides close the
// connection on one.
var (
	// ErrFormat is returned for data that is not a protocol frame at
	// all (bad magic, nonzero reserved bits, unknown message type).
	ErrFormat = errors.New("wire: not a protocol frame")
	// ErrVersion is returned for frames with an unknown protocol
	// version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrTooLarge is returned when a frame header claims a payload
	// beyond the configured cap. The claim is rejected before any
	// payload allocation, so an adversarial length cannot OOM the peer.
	ErrTooLarge = errors.New("wire: frame payload exceeds limit")
	// ErrTruncated is returned when the data ends mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
)

// ErrTransport wraps connection-level failures (dial, broken pipe,
// mid-request EOF) reported by the wire client, so callers can tell a
// dead transport (errors.Is(err, ErrTransport): reconnect and retry)
// from a typed server reply. Protocol-level failures (ErrFormat and
// friends) are also transport-fatal and match ErrTransport when
// surfaced from a connection.
var ErrTransport = errors.New("wire: transport failure")

// MsgType tags a frame's payload shape.
type MsgType uint8

// Request message types (client → server).
const (
	// MsgPredict is a single prediction: binary payload
	// model | deadline_ms | statement.
	MsgPredict MsgType = 0x01
	// MsgPredictBatch is a batch prediction: binary payload
	// model | deadline_ms | count | statements.
	MsgPredictBatch MsgType = 0x02
	// MsgStats requests a model's service metrics: JSON payload
	// {"model": name}; reply is a MsgJSON service.StatsSnapshot.
	MsgStats MsgType = 0x03
	// MsgHealthz probes readiness: empty payload; reply is a MsgJSON
	// service.Health, or a typed unavailable error while warming up.
	MsgHealthz MsgType = 0x04
	// MsgModels lists registered models: empty payload; reply is a
	// MsgJSON []service.ModelInfo.
	MsgModels MsgType = 0x05
	// MsgDeploy deploys a model version: JSON payload matching the
	// POST /v1/deploy body; reply is a MsgJSON service.ModelInfo.
	MsgDeploy MsgType = 0x06
	// MsgGC runs the retention pass: empty payload; reply is a MsgJSON
	// {"results": [...]}.
	MsgGC MsgType = 0x07
	// MsgIngest logs ground-truth feedback for a served statement: JSON
	// payload matching the POST /v1/ingest body; reply is a MsgJSON
	// service.IngestResponse.
	MsgIngest MsgType = 0x08
)

// Reply message types (server → client).
const (
	// MsgError is a typed failure reply: binary payload
	// status u16 | retry-after seconds u16 | message. The status is the
	// exact HTTP status service.StatusFor assigns the same error, so
	// sentinel mapping is identical across transports.
	MsgError MsgType = 0x20
	// MsgPredictReply answers MsgPredict with a binary prediction.
	MsgPredictReply MsgType = 0x21
	// MsgPredictBatchReply answers MsgPredictBatch.
	MsgPredictBatchReply MsgType = 0x22
	// MsgJSON answers a control-plane request with a JSON document.
	MsgJSON MsgType = 0x23
)

// validType reports whether t is a known message type.
func validType(t MsgType) bool {
	return (t >= MsgPredict && t <= MsgIngest) || (t >= MsgError && t <= MsgJSON)
}

// String names the message type for logs and errors.
func (t MsgType) String() string {
	switch t {
	case MsgPredict:
		return "predict"
	case MsgPredictBatch:
		return "predict-batch"
	case MsgStats:
		return "stats"
	case MsgHealthz:
		return "healthz"
	case MsgModels:
		return "models"
	case MsgDeploy:
		return "deploy"
	case MsgGC:
		return "gc"
	case MsgIngest:
		return "ingest"
	case MsgError:
		return "error"
	case MsgPredictReply:
		return "predict-reply"
	case MsgPredictBatchReply:
		return "predict-batch-reply"
	case MsgJSON:
		return "json-reply"
	default:
		return fmt.Sprintf("type(0x%02x)", uint8(t))
	}
}

// Header is one decoded frame header.
type Header struct {
	Type MsgType
	ID   uint64
	// Len is the payload length in bytes.
	Len int
}

// appendHeader appends a frame header to dst.
func appendHeader(dst []byte, t MsgType, id uint64, payloadLen int) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, byte(t), 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	return dst
}

// beginFrame appends a frame header with a placeholder payload length
// and returns the extended buffer; the caller appends the payload and
// finishes with endFrame. This lets encoders build header and payload
// in one reused buffer and write the frame with a single syscall.
func beginFrame(dst []byte, t MsgType, id uint64) []byte {
	return appendHeader(dst, t, id, 0)
}

// endFrame patches the payload length of the frame whose header starts
// at start. buf must hold that complete frame (header + payload) as
// its tail.
func endFrame(buf []byte, start int) []byte {
	binary.LittleEndian.PutUint32(buf[start+16:], uint32(len(buf)-start-HeaderSize))
	return buf
}

// parseHeader validates a frame header against the payload cap. It
// checks shape (magic, version, reserved bits, known type) before
// trusting the length claim, so corrupt or adversarial headers fail
// typed without any payload-sized allocation.
func parseHeader(hdr []byte, maxPayload int) (Header, error) {
	if len(hdr) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(hdr))
	}
	if [4]byte(hdr[:4]) != magic {
		return Header{}, ErrFormat
	}
	if hdr[4] != Version {
		return Header{}, fmt.Errorf("%w: %d (peer supports %d)", ErrVersion, hdr[4], Version)
	}
	t := MsgType(hdr[5])
	if !validType(t) {
		return Header{}, fmt.Errorf("%w: unknown message type 0x%02x", ErrFormat, hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return Header{}, fmt.Errorf("%w: nonzero reserved bits", ErrFormat)
	}
	n := binary.LittleEndian.Uint32(hdr[16:])
	if int64(n) > int64(maxPayload) {
		// Returned bare (no wrapping): rejecting an adversarial length
		// claim must itself be allocation-free.
		return Header{}, ErrTooLarge
	}
	return Header{Type: t, ID: binary.LittleEndian.Uint64(hdr[8:]), Len: int(n)}, nil
}

// DecodeFrame decodes one complete frame from the head of data,
// returning its header, payload (a subslice of data — no copy, no
// allocation), and the remaining bytes. It is the slice-shaped twin of
// frameReader.next used by tests and the fuzz target: it never panics
// and never allocates proportionally to a corrupt length claim.
func DecodeFrame(data []byte, maxPayload int) (Header, []byte, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	h, err := parseHeader(data, maxPayload)
	if err != nil {
		return Header{}, nil, nil, err
	}
	if len(data)-HeaderSize < h.Len {
		return Header{}, nil, nil, fmt.Errorf("%w: header claims %d payload bytes, %d present",
			ErrTruncated, h.Len, len(data)-HeaderSize)
	}
	return h, data[HeaderSize : HeaderSize+h.Len], data[HeaderSize+h.Len:], nil
}

// AppendFrame appends one complete frame to dst.
func AppendFrame(dst []byte, t MsgType, id uint64, payload []byte) []byte {
	dst = appendHeader(dst, t, id, len(payload))
	return append(dst, payload...)
}

// frameReader reads frames from a stream into reused per-connection
// buffers: the warm path performs zero allocations once the payload
// buffer has grown to the connection's working set.
type frameReader struct {
	r          io.Reader
	maxPayload int
	hdr        [HeaderSize]byte
	payload    []byte
}

// next reads one frame. The returned payload is valid only until the
// following next call (it aliases the reader's reused buffer). io.EOF
// is returned untouched for a clean close between frames; any other
// failure is wrapped.
func (fr *frameReader) next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("%w: read header: %v", ErrTruncated, err)
	}
	h, err := parseHeader(fr.hdr[:], fr.maxPayload)
	if err != nil {
		return Header{}, nil, err
	}
	if cap(fr.payload) < h.Len {
		fr.payload = make([]byte, h.Len)
	}
	buf := fr.payload[:h.Len]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return Header{}, nil, fmt.Errorf("%w: read %d-byte payload: %v", ErrTruncated, h.Len, err)
	}
	return h, buf, nil
}
