package wire

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// ClientOptions tunes a wire Client. The zero value is usable.
type ClientOptions struct {
	// Conns is the pooled connection count (default 2). Requests
	// round-robin across connections and pipeline freely within one.
	Conns int
	// MaxPayload caps accepted reply payloads (default
	// DefaultMaxPayload).
	MaxPayload int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// ServerError is a typed failure reply from the wire server. Status is
// the exact HTTP status the service's error mapper assigns the same
// failure, so callers translate wire and HTTP errors through one
// table; RetryAfter carries the server's pacing hint in seconds (0 if
// none).
type ServerError struct {
	Status     int
	Message    string
	RetryAfter int
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server status %d: %s", e.Status, e.Message)
}

// Client speaks the wire protocol over a small pool of persistent
// connections. Calls from any number of goroutines pipeline onto the
// connections; one reader goroutine per connection completes them in
// whatever order the server replies, matched by request ID. The warm
// PredictInto path performs zero allocations.
type Client struct {
	network string
	addr    string
	opts    ClientOptions

	reqID atomic.Uint64
	rr    atomic.Uint64

	callPool sync.Pool

	mu     sync.Mutex
	conns  []*clientConn
	closed bool
}

// Dial creates a client for the wire server at addr on network ("tcp"
// or "unix"). Connections are established lazily and redialed
// transparently after transport failures.
func Dial(network, addr string, opts ClientOptions) *Client {
	if opts.Conns <= 0 {
		opts.Conns = 2
	}
	if opts.MaxPayload <= 0 {
		opts.MaxPayload = DefaultMaxPayload
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{network: network, addr: addr, opts: opts, conns: make([]*clientConn, opts.Conns)}
	c.callPool.New = func() any { return &call{done: make(chan struct{}, 1)} }
	return c
}

// Close tears down every pooled connection. In-flight calls fail with
// a transport error.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conns := append([]*clientConn(nil), c.conns...)
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.fail(fmt.Errorf("%w: client closed", ErrTransport))
		}
	}
	return nil
}

// call is one in-flight request, pooled and reused. The reader
// goroutine decodes the reply directly into it before signaling done.
type call struct {
	done chan struct{} // buffered(1); one signal per use

	// Reply destinations, populated by the connection reader:
	pred   service.Prediction
	probs  []float64 // caller scratch in, decoded values out
	preds  []service.Prediction
	js     []byte
	srvErr *ServerError
	err    error
}

func (ca *call) reset() {
	ca.pred = service.Prediction{}
	ca.probs = nil
	ca.preds = nil
	ca.js = nil
	ca.srvErr = nil
	ca.err = nil
}

// clientConn is one pooled connection with its reader goroutine.
type clientConn struct {
	nc net.Conn

	wmu  sync.Mutex
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint64]*call
	err     error // terminal transport error; set once

	down atomic.Bool

	// Reply-name intern cache (reader-goroutine-only): the model name
	// repeats on every reply, so it is copied once per distinct name,
	// not once per prediction.
	nameB []byte
	name  string
}

// conn returns the i-th pooled connection, dialing it if absent or
// down.
func (c *Client) conn(i int) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("%w: client closed", ErrTransport)
	}
	cc := c.conns[i]
	if cc != nil && !cc.down.Load() {
		return cc, nil
	}
	nc, err := net.DialTimeout(c.network, c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s %s: %v", ErrTransport, c.network, c.addr, err)
	}
	cc = &clientConn{nc: nc, pending: map[uint64]*call{}}
	c.conns[i] = cc
	go cc.readLoop(c.opts.MaxPayload)
	return cc, nil
}

// fail terminates the connection: every pending call completes with
// err and later use redials.
func (cc *clientConn) fail(err error) {
	cc.pmu.Lock()
	if cc.err == nil {
		cc.err = err
		cc.down.Store(true)
		cc.nc.Close()
		for id, ca := range cc.pending {
			delete(cc.pending, id)
			ca.err = err
			ca.done <- struct{}{}
		}
	}
	cc.pmu.Unlock()
}

// readLoop demultiplexes reply frames onto pending calls by request
// ID. Frame corruption or connection loss fails the connection and
// every call pipelined on it.
func (cc *clientConn) readLoop(maxPayload int) {
	fr := frameReader{r: cc.nc, maxPayload: maxPayload}
	for {
		h, payload, err := fr.next()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("%w: connection closed by server", ErrTransport)
			} else {
				err = fmt.Errorf("%w: %v", ErrTransport, err)
			}
			cc.fail(err)
			return
		}
		cc.pmu.Lock()
		ca, ok := cc.pending[h.ID]
		if ok {
			delete(cc.pending, h.ID)
		}
		cc.pmu.Unlock()
		if !ok {
			// Reply to an abandoned (deadline-expired) request.
			continue
		}
		cc.decodeReply(ca, h.Type, payload)
		ca.done <- struct{}{}
	}
}

// intern returns b as a string, reusing the previous copy when the
// bytes match (reader-goroutine-only state).
func (cc *clientConn) intern(b []byte) string {
	if !bytes.Equal(b, cc.nameB) {
		cc.nameB = append(cc.nameB[:0], b...)
		cc.name = string(b)
	}
	return cc.name
}

// decodeReply fills ca from one reply frame. It runs on the reader
// goroutine because the payload aliases the reader's reused buffer.
func (cc *clientConn) decodeReply(ca *call, t MsgType, payload []byte) {
	switch t {
	case MsgPredictReply:
		ca.probs, ca.err = decodePredictReply(payload, &ca.pred, ca.probs, cc.intern)
	case MsgPredictBatchReply:
		ca.preds, ca.err = decodePredictBatchReply(payload, cc.intern)
	case MsgJSON:
		ca.js = append([]byte(nil), payload...)
	case MsgError:
		status, retryAfter, msg, err := decodeErrorReply(payload)
		if err != nil {
			ca.err = err
			return
		}
		ca.srvErr = &ServerError{Status: status, Message: msg, RetryAfter: retryAfter}
	default:
		ca.err = fmt.Errorf("%w: unexpected reply type %s", ErrFormat, t)
	}
}

// deadlineMs converts ctx's deadline into the frame's server-side
// deadline hint (0 = none). An already-expired context short-circuits.
func deadlineMs(ctx context.Context) (uint32, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, nil
	}
	ms := time.Until(dl).Milliseconds()
	if ms <= 0 {
		return 0, context.DeadlineExceeded
	}
	return uint32(ms), nil
}

// roundTrip registers ca under a fresh request ID, writes one frame
// (header built in the connection's reused write buffer, payload
// appended by enc), and waits for the reader or ctx.
func (c *Client) roundTrip(ctx context.Context, t MsgType, ca *call, enc func(dst []byte) []byte) error {
	cc, err := c.conn(int(c.rr.Add(1) % uint64(c.opts.Conns)))
	if err != nil {
		return err
	}
	id := c.reqID.Add(1)

	// Register before writing so a reply can never race registration.
	cc.pmu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.pmu.Unlock()
		return err
	}
	cc.pending[id] = ca
	cc.pmu.Unlock()

	cc.wmu.Lock()
	buf := beginFrame(cc.wbuf[:0], t, id)
	buf = enc(buf)
	buf = endFrame(buf, 0)
	cc.wbuf = buf
	_, werr := cc.nc.Write(buf)
	cc.wmu.Unlock()
	if werr != nil {
		cc.fail(fmt.Errorf("%w: write: %v", ErrTransport, werr))
		// fail signaled ca.done (or another goroutine's fail did);
		// fall through to the wait, which returns immediately.
	}

	select {
	case <-ca.done:
		return nil
	case <-ctx.Done():
		// Abandon: deregister so the reader skips the eventual reply.
		// If the reader already claimed the call it is mid-decode —
		// wait for its signal so the call is quiescent (and poolable)
		// before returning.
		cc.pmu.Lock()
		_, mine := cc.pending[id]
		if mine {
			delete(cc.pending, id)
		}
		cc.pmu.Unlock()
		if !mine {
			<-ca.done
		}
		return ctx.Err()
	}
}

// finish translates a completed call into the caller-facing error and
// recycles the call.
func (c *Client) finish(ca *call) error {
	err := ca.err
	if err == nil && ca.srvErr != nil {
		err = ca.srvErr
	}
	ca.reset()
	c.callPool.Put(ca)
	return err
}

// PredictInto requests one prediction, decoding class probabilities
// into probs (grown only when capacity is insufficient). The returned
// prediction's Probs field aliases the returned slice; pass it back in
// on the next call for an allocation-free warm path.
func (c *Client) PredictInto(ctx context.Context, model, stmt string, probs []float64) (service.Prediction, []float64, error) {
	dl, err := deadlineMs(ctx)
	if err != nil {
		return service.Prediction{}, probs, err
	}
	ca := c.callPool.Get().(*call)
	ca.probs = probs
	if err := c.roundTrip(ctx, MsgPredict, ca, func(dst []byte) []byte {
		return appendPredictReq(dst, model, stmt, dl)
	}); err != nil {
		ca.reset()
		c.callPool.Put(ca)
		return service.Prediction{}, probs, err
	}
	pr, out := ca.pred, ca.probs
	if err := c.finish(ca); err != nil {
		return service.Prediction{}, out, err
	}
	return pr, out, nil
}

// Predict requests one prediction with freshly allocated results.
func (c *Client) Predict(ctx context.Context, model, stmt string) (service.Prediction, error) {
	pr, _, err := c.PredictInto(ctx, model, stmt, nil)
	return pr, err
}

// PredictBatch requests predictions for every statement in one frame;
// the server fans the batch across its replica pool.
func (c *Client) PredictBatch(ctx context.Context, model string, stmts []string) ([]service.Prediction, error) {
	dl, err := deadlineMs(ctx)
	if err != nil {
		return nil, err
	}
	ca := c.callPool.Get().(*call)
	if err := c.roundTrip(ctx, MsgPredictBatch, ca, func(dst []byte) []byte {
		return appendPredictBatchReq(dst, model, stmts, dl)
	}); err != nil {
		ca.reset()
		c.callPool.Put(ca)
		return nil, err
	}
	preds := ca.preds
	if err := c.finish(ca); err != nil {
		return nil, err
	}
	return preds, nil
}

// Call performs a control-plane request (stats, healthz, models,
// deploy, gc): reqJSON is the request's JSON payload (nil for the
// empty-bodied messages) and the reply document is returned. Failures
// reported by the server are *ServerError.
func (c *Client) Call(ctx context.Context, t MsgType, reqJSON []byte) ([]byte, error) {
	dl, err := deadlineMs(ctx)
	if err != nil {
		return nil, err
	}
	_ = dl // control-plane requests rely on ctx alone
	ca := c.callPool.Get().(*call)
	if err := c.roundTrip(ctx, t, ca, func(dst []byte) []byte {
		return append(dst, reqJSON...)
	}); err != nil {
		ca.reset()
		c.callPool.Put(ca)
		return nil, err
	}
	js := ca.js
	if err := c.finish(ca); err != nil {
		return nil, err
	}
	return js, nil
}
