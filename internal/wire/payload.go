package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/service"
)

// Payload layouts (all little-endian, strings length-prefixed):
//
//	MsgPredict:           model u16+bytes | deadline_ms u32 | statement u32+bytes
//	MsgPredictBatch:      model u16+bytes | deadline_ms u32 | count u32 | count × (statement u32+bytes)
//	MsgPredictReply:      name u16+bytes | version u32 | kind u8 |
//	                        kind 1 (classification): class u32 | n u32 | n × f64 bits
//	                        kind 0 (regression):     log f64 bits | raw f64 bits
//	MsgPredictBatchReply: name u16+bytes | version u32 | kind u8 | count u32 | count × item
//	MsgError:             status u16 | retry-after seconds u16 | message u32+bytes
//
// Probabilities travel as raw IEEE-754 bit patterns (the artifact
// format's idiom), so a prediction served over the wire is bit-
// identical to the same prediction read off the pool directly.

const (
	kindRegression     = 0
	kindClassification = 1
)

// maxStatements caps the statement count one batch request may claim;
// an honest count also fits the payload (each statement costs at least
// its 4-byte length prefix), which decode enforces before allocating.
const maxStatements = 1 << 20

// appendString16 appends a u16-length-prefixed string (model and
// registry names; their length is bounded far below 64KiB).
func appendString16(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendString32 appends a u32-length-prefixed string.
func appendString32(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// appendPredictReq encodes a MsgPredict payload.
func appendPredictReq(dst []byte, model, stmt string, deadlineMs uint32) []byte {
	dst = appendString16(dst, model)
	dst = binary.LittleEndian.AppendUint32(dst, deadlineMs)
	return appendString32(dst, stmt)
}

// appendPredictBatchReq encodes a MsgPredictBatch payload.
func appendPredictBatchReq(dst []byte, model string, stmts []string, deadlineMs uint32) []byte {
	dst = appendString16(dst, model)
	dst = binary.LittleEndian.AppendUint32(dst, deadlineMs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(stmts)))
	for _, s := range stmts {
		dst = appendString32(dst, s)
	}
	return dst
}

// appendPredictReply encodes a MsgPredictReply payload.
func appendPredictReply(dst []byte, pr *service.Prediction) []byte {
	dst = appendString16(dst, pr.Name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(pr.Version))
	if pr.Classification {
		dst = append(dst, kindClassification)
		return appendPredictItem(dst, pr)
	}
	dst = append(dst, kindRegression)
	return appendPredictItem(dst, pr)
}

// appendPredictBatchReply encodes a MsgPredictBatchReply payload. A
// batch runs entirely on one snapshot, so name, version, and kind are
// shipped once.
func appendPredictBatchReply(dst []byte, prs []service.Prediction) []byte {
	kind := byte(kindRegression)
	if len(prs) > 0 && prs[0].Classification {
		kind = kindClassification
	}
	var name string
	var version int
	if len(prs) > 0 {
		name, version = prs[0].Name, prs[0].Version
	}
	dst = appendString16(dst, name)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(version))
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(prs)))
	for i := range prs {
		dst = appendPredictItem(dst, &prs[i])
	}
	return dst
}

// appendPredictItem encodes one prediction body (class + probs, or
// log + raw).
func appendPredictItem(dst []byte, pr *service.Prediction) []byte {
	if pr.Classification {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(pr.Class))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pr.Probs)))
		for _, v := range pr.Probs {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
		return dst
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(pr.Log))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(pr.Raw))
}

// appendErrorReply encodes a MsgError payload.
func appendErrorReply(dst []byte, status, retryAfterSec int, msg string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(status))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(retryAfterSec))
	return appendString32(dst, msg)
}

// decodePredictReq parses a MsgPredict payload. model and stmt alias
// the payload buffer — valid only while the caller owns it.
func decodePredictReq(p []byte) (model, stmt []byte, deadlineMs uint32, err error) {
	d := pdec{buf: p}
	model = d.bytes16()
	deadlineMs = d.u32()
	stmt = d.bytes32()
	if err := d.finish(); err != nil {
		return nil, nil, 0, err
	}
	return model, stmt, deadlineMs, nil
}

// decodePredictBatchReq parses a MsgPredictBatch payload, appending
// statement views onto stmts (reused across requests). The views alias
// the payload buffer.
func decodePredictBatchReq(p []byte, stmts [][]byte) (model []byte, deadlineMs uint32, out [][]byte, err error) {
	d := pdec{buf: p}
	model = d.bytes16()
	deadlineMs = d.u32()
	n := int(d.u32())
	// Shape check before trusting the count: each statement costs at
	// least its 4-byte length prefix.
	if d.err == nil && (n > maxStatements || n > d.remaining()/4) {
		d.fail()
	}
	out = stmts[:0]
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.bytes32())
	}
	if err := d.finish(); err != nil {
		return nil, 0, nil, err
	}
	return model, deadlineMs, out, nil
}

// decodePredictReply parses a MsgPredictReply into pr, writing
// probabilities into probs (grown only when capacity is insufficient)
// and returning the written slice for reuse. pr.Name is interned per
// connection by the caller; here it is allocated only when it changes.
func decodePredictReply(p []byte, pr *service.Prediction, probs []float64, intern func([]byte) string) ([]float64, error) {
	d := pdec{buf: p}
	name := d.bytes16()
	version := int(d.u32())
	kind := d.byte()
	probs = probs[:0]
	switch kind {
	case kindClassification:
		pr.Classification = true
		pr.Class = int(d.u32())
		n := int(d.u32())
		if d.err == nil && n > d.remaining()/8 {
			d.fail()
		}
		if d.err == nil && cap(probs) < n {
			// One right-sized grow instead of append doubling from nil —
			// a bare Predict (no reused buffer) pays 1 alloc, not ~4.
			probs = make([]float64, 0, n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			probs = append(probs, d.f64())
		}
		pr.Probs = probs
		pr.Log, pr.Raw = 0, 0
	case kindRegression:
		pr.Classification = false
		pr.Class = 0
		pr.Probs = nil
		pr.Log = d.f64()
		pr.Raw = d.f64()
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: unknown prediction kind %d", ErrFormat, kind)
		}
	}
	if err := d.finish(); err != nil {
		return probs, err
	}
	pr.Name = intern(name)
	pr.Version = version
	return probs, nil
}

// decodePredictBatchReply parses a MsgPredictBatchReply into a fresh
// prediction slice (batch results are retention-safe by construction).
func decodePredictBatchReply(p []byte, intern func([]byte) string) ([]service.Prediction, error) {
	d := pdec{buf: p}
	name := intern(d.bytes16())
	version := int(d.u32())
	kind := d.byte()
	n := int(d.u32())
	// Every item costs at least 4 bytes (class) or 16 (log+raw).
	if d.err == nil && (kind != kindClassification && kind != kindRegression || n > d.remaining()/4) {
		if d.err == nil && kind != kindClassification && kind != kindRegression {
			d.err = fmt.Errorf("%w: unknown prediction kind %d", ErrFormat, kind)
		} else {
			d.fail()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	out := make([]service.Prediction, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		pr := service.Prediction{Name: name, Version: version}
		if kind == kindClassification {
			pr.Classification = true
			pr.Class = int(d.u32())
			m := int(d.u32())
			if d.err == nil && m > d.remaining()/8 {
				d.fail()
				break
			}
			pr.Probs = make([]float64, 0, m)
			for k := 0; k < m && d.err == nil; k++ {
				pr.Probs = append(pr.Probs, d.f64())
			}
		} else {
			pr.Log = d.f64()
			pr.Raw = d.f64()
		}
		out = append(out, pr)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeErrorReply parses a MsgError payload. The message is copied
// (error paths are cold).
func decodeErrorReply(p []byte) (status, retryAfterSec int, msg string, err error) {
	d := pdec{buf: p}
	status = int(d.u16())
	retryAfterSec = int(d.u16())
	msg = string(d.bytes32())
	if err := d.finish(); err != nil {
		return 0, 0, "", err
	}
	return status, retryAfterSec, msg, nil
}

// pdec reads little-endian payload fields with sticky-error bounds
// checks, mirroring internal/artifact's decoder: the first
// out-of-bounds read records ErrTruncated and every subsequent read
// returns zero values, so decode logic stays linear. It never
// allocates — byte fields are views into the payload.
type pdec struct {
	buf []byte
	off int
	err error
}

func (d *pdec) remaining() int { return len(d.buf) - d.off }

func (d *pdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload ends at offset %d", ErrTruncated, d.off)
	}
}

func (d *pdec) take(n int) []byte {
	if d.err != nil || n < 0 || d.remaining() < n {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *pdec) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *pdec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *pdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *pdec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// bytes16 reads a u16-length-prefixed byte field as a payload view.
func (d *pdec) bytes16() []byte { return d.take(int(d.u16())) }

// bytes32 reads a u32-length-prefixed byte field as a payload view.
func (d *pdec) bytes32() []byte {
	n := d.u32()
	if d.err == nil && int64(n) > int64(d.remaining()) {
		d.fail()
		return nil
	}
	return d.take(int(n))
}

// finish reports the sticky error, or ErrFormat if decoding left
// trailing bytes (a shape mismatch, not honest truncation).
func (d *pdec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFormat, len(d.buf)-d.off)
	}
	return nil
}
