package simdb

import (
	"math"
	"strings"

	"repro/internal/sqlparse"
)

// Cost-model constants, in CPU-seconds. They are calibrated so that the
// synthetic SDSS workload reproduces the label magnitudes of Figure 6:
// index point-lookups cost milliseconds, full scans of PhotoObj-sized
// tables cost tens of seconds, and row-wise function evaluation over a
// large scan (the Figure 1b anti-pattern) costs thousands of seconds.
const (
	cpuPerRowScan   = 2e-8   // per row examined in a scan
	cpuPerRowOut    = 5e-9   // per output row per column
	cpuPerPredicate = 8e-9   // per row per predicate evaluated
	cpuHashJoinRow  = 2.5e-8 // per row hashed or probed
	cpuSortRowLog   = 2e-8   // per row per log2(rows) in a sort
	cpuAggRow       = 1.5e-8
	cpuIndexSeek    = 1e-5 // fixed cost of one B-tree descent
	cpuStatementMin = 1.2e-3
)

// defaultTableRows is used for opaque relations (user MyDB tables).
const defaultTableRows = 50_000

// planEstimate is the estimator's view of one relational operator tree.
type planEstimate struct {
	Rows  float64 // output cardinality
	Cost  float64 // CPU seconds
	Width float64 // output columns
}

// estimator walks SELECT trees computing cardinality and cost. The same
// walker serves the "true" execution simulation (accurate statistics,
// function costs included) and, with Uniform set, the `opt` baseline's
// imprecise analytic model (uniformity assumptions, function costs
// ignored).
type estimator struct {
	cat *Catalog
	// Uniform switches to the optimizer's simplified assumptions:
	// fixed default selectivities and no row-wise function costs.
	Uniform bool
}

// relation is one bound FROM-list entry.
type relation struct {
	alias   string
	table   *Table  // nil for derived relations
	rows    float64 // current cardinality
	indexed bool    // an index-seek predicate applies
	seekSel float64 // selectivity of the seek predicate
}

// relSet tracks the relations visible to predicate analysis within one
// SELECT, chained to the enclosing query for correlated references.
type relSet struct {
	parent *relSet
	rels   []*relation
	byName map[string]*relation
}

func newRelSet(parent *relSet) *relSet {
	return &relSet{parent: parent, byName: map[string]*relation{}}
}

func (rs *relSet) add(r *relation) {
	rs.rels = append(rs.rels, r)
	rs.byName[strings.ToLower(r.alias)] = r
}

func (rs *relSet) lookup(alias string) *relation {
	for s := rs; s != nil; s = s.parent {
		if r, ok := s.byName[strings.ToLower(alias)]; ok {
			return r
		}
	}
	return nil
}

// column resolves a column reference to (relation, column stats); both
// may be nil for derived or unknown references.
func (rs *relSet) column(ref *sqlparse.ColumnRef) (*relation, *Column) {
	if len(ref.Parts) >= 2 {
		rel := rs.lookup(ref.Parts[len(ref.Parts)-2])
		if rel == nil {
			return nil, nil
		}
		if rel.table == nil {
			return rel, nil
		}
		return rel, rel.table.Column(ref.Name())
	}
	for s := rs; s != nil; s = s.parent {
		for _, r := range s.rels {
			if r.table == nil {
				continue
			}
			if c := r.table.Column(ref.Name()); c != nil {
				return r, c
			}
		}
	}
	return nil, nil
}

// predInfo accumulates the effects of a predicate tree.
type predInfo struct {
	selectivity float64
	funcCostRow float64 // per-row function cost within predicates
	subCost     float64 // cost of evaluating subqueries
	predicates  int
}

// EstimateSelect computes the plan estimate for a SELECT statement.
func (e *estimator) estimateSelect(sel *sqlparse.SelectStmt, parent *relSet) planEstimate {
	rs := newRelSet(parent)
	var est planEstimate
	est.Rows = 1

	// Bind and size the FROM list.
	joinCost := 0.0
	for _, ref := range sel.From {
		p := e.estimateTableRef(ref, rs)
		est.Rows *= math.Max(p.Rows, 1)
		joinCost += p.Cost
	}

	// Predicate analysis over WHERE.
	where := predInfo{selectivity: 1}
	if sel.Where != nil {
		where = e.analyzePredicate(sel.Where, rs)
	}

	// Implicit equi-joins in comma-style FROM lists: reflected in the
	// selectivity computed by analyzePredicate via column-pair
	// predicates, so no extra handling needed here.

	rowsBeforeFilter := est.Rows
	est.Rows *= clamp01(where.selectivity)

	// Scan costs: indexed relations seek, others scan fully.
	scanned := 0.0
	maxScan := 0.0
	for _, r := range rs.rels {
		rows := r.rows
		if r.indexed && r.table != nil {
			seekRows := math.Max(r.rows*r.seekSel, 1)
			est.Cost += cpuIndexSeek + seekRows*cpuPerRowScan
			scanned += seekRows
			maxScan = math.Max(maxScan, seekRows)
			continue
		}
		est.Cost += rows * cpuPerRowScan
		scanned += rows
		maxScan = math.Max(maxScan, rows)
	}
	est.Cost += joinCost
	est.Cost += float64(where.predicates) * maxScan * cpuPerPredicate
	if !e.Uniform {
		est.Cost += where.funcCostRow * maxScan
	}
	est.Cost += where.subCost
	_ = rowsBeforeFilter
	_ = scanned

	// Aggregation and grouping.
	hasAggregate := false
	selectFuncCost := 0.0
	width := 0.0
	for _, item := range sel.Columns {
		if item.Star {
			width += e.starWidth(rs)
			continue
		}
		width++
		fi := e.exprFuncInfo(item.Expr, rs)
		selectFuncCost += fi.costPerRow
		est.Cost += fi.subCost
		if fi.hasAggregate {
			hasAggregate = true
		}
	}
	if width == 0 {
		width = 1
	}
	est.Width = width

	switch {
	case len(sel.GroupBy) > 0:
		groups := e.groupCount(sel.GroupBy, rs, est.Rows)
		est.Cost += est.Rows * cpuAggRow
		est.Rows = groups
		if sel.Having != nil {
			hv := e.analyzePredicate(sel.Having, rs)
			est.Rows *= clamp01(hv.selectivity)
			est.Cost += hv.subCost
		}
	case hasAggregate:
		est.Cost += est.Rows * cpuAggRow
		est.Rows = 1
	}

	if sel.Distinct {
		// Distinct output: heuristic reduction.
		est.Rows = math.Min(est.Rows, math.Max(math.Sqrt(est.Rows)*10, 1))
		est.Cost += est.Rows * cpuAggRow
	}

	// Row-wise select-list functions are evaluated per output row.
	if !e.Uniform {
		est.Cost += selectFuncCost * est.Rows
	}

	if len(sel.OrderBy) > 0 && est.Rows > 1 {
		est.Cost += est.Rows * math.Log2(est.Rows+2) * cpuSortRowLog
	}

	if sel.Top != nil {
		limit := sel.Top.Count
		if sel.Top.Percent {
			limit = est.Rows * sel.Top.Count / 100
		}
		if limit >= 0 {
			est.Rows = math.Min(est.Rows, math.Max(limit, 0))
		}
	}

	est.Cost += est.Rows * width * cpuPerRowOut

	if sel.Next != nil {
		next := e.estimateSelect(sel.Next, parent)
		switch sel.SetOp {
		case "UNION":
			est.Rows = (est.Rows + next.Rows) * 0.9 // dedup overlap
			est.Cost += next.Cost + (est.Rows+next.Rows)*cpuAggRow
		case "UNION ALL":
			est.Rows += next.Rows
			est.Cost += next.Cost
		case "INTERSECT":
			est.Rows = math.Min(est.Rows, next.Rows) * 0.5
			est.Cost += next.Cost + (est.Rows+next.Rows)*cpuAggRow
		case "EXCEPT":
			est.Rows = est.Rows * 0.5
			est.Cost += next.Cost + (est.Rows+next.Rows)*cpuAggRow
		}
	}

	est.Rows = math.Max(est.Rows, 0)
	return est
}

func (e *estimator) starWidth(rs *relSet) float64 {
	w := 0.0
	for _, r := range rs.rels {
		if r.table != nil {
			w += float64(len(r.table.Columns))
		} else {
			w += 8
		}
	}
	if w == 0 {
		return 8
	}
	return w
}

func (e *estimator) estimateTableRef(ref sqlparse.TableRef, rs *relSet) planEstimate {
	switch r := ref.(type) {
	case *sqlparse.TableName:
		rel := &relation{alias: refAlias(r)}
		t := e.cat.Table(r.Parts[len(r.Parts)-1])
		if t != nil {
			rel.table = t
			rel.rows = float64(t.Rows)
		} else {
			rel.rows = defaultTableRows
		}
		rs.add(rel)
		return planEstimate{Rows: rel.rows}
	case *sqlparse.JoinRef:
		left := e.estimateTableRef(r.Left, rs)
		right := e.estimateTableRef(r.Right, rs)
		p := planEstimate{Rows: left.Rows * right.Rows, Cost: left.Cost + right.Cost}
		if r.On != nil {
			info := e.analyzePredicate(r.On, rs)
			p.Rows *= clamp01(info.selectivity)
			p.Cost += info.subCost
			if !e.Uniform {
				p.Cost += info.funcCostRow * math.Max(left.Rows, right.Rows)
			}
		}
		// Hash join build + probe.
		p.Cost += (left.Rows + right.Rows) * cpuHashJoinRow
		return p
	case *sqlparse.SubqueryRef:
		inner := e.estimateSelect(r.Select, rs.parent)
		alias := r.Alias
		if alias == "" {
			alias = "_derived"
		}
		rs.add(&relation{alias: alias, rows: inner.Rows})
		return inner
	}
	return planEstimate{Rows: 1}
}

func refAlias(t *sqlparse.TableName) string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Parts[len(t.Parts)-1]
}

// Default selectivities. The Uniform (optimizer) variants are the
// textbook constants; the accurate variants use column statistics when
// available.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 1.0 / 3
	defaultLikeSel  = 0.08
	optimizerEqSel  = 0.01
	optimizerRange  = 0.30
)

func (e *estimator) analyzePredicate(expr sqlparse.Expr, rs *relSet) predInfo {
	switch x := expr.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case "AND":
			l := e.analyzePredicate(x.Left, rs)
			r := e.analyzePredicate(x.Right, rs)
			return predInfo{
				selectivity: l.selectivity * r.selectivity,
				funcCostRow: l.funcCostRow + r.funcCostRow,
				subCost:     l.subCost + r.subCost,
				predicates:  l.predicates + r.predicates,
			}
		case "OR":
			l := e.analyzePredicate(x.Left, rs)
			r := e.analyzePredicate(x.Right, rs)
			return predInfo{
				selectivity: clamp01(l.selectivity + r.selectivity - l.selectivity*r.selectivity),
				funcCostRow: l.funcCostRow + r.funcCostRow,
				subCost:     l.subCost + r.subCost,
				predicates:  l.predicates + r.predicates,
			}
		default:
			return e.analyzeComparison(x, rs)
		}
	case *sqlparse.UnaryExpr:
		switch x.Op {
		case "NOT":
			inner := e.analyzePredicate(x.Expr, rs)
			inner.selectivity = clamp01(1 - inner.selectivity)
			return inner
		case "IS NULL":
			sel := 0.02
			if _, col := e.columnOf(x.Expr, rs); col != nil && !e.Uniform {
				sel = math.Max(col.NullFrac, 0.001)
			}
			fi := e.exprFuncInfo(x.Expr, rs)
			return predInfo{selectivity: sel, funcCostRow: fi.costPerRow, subCost: fi.subCost, predicates: 1}
		case "IS NOT NULL":
			sel := 0.98
			if _, col := e.columnOf(x.Expr, rs); col != nil && !e.Uniform {
				sel = clamp01(1 - col.NullFrac)
			}
			fi := e.exprFuncInfo(x.Expr, rs)
			return predInfo{selectivity: sel, funcCostRow: fi.costPerRow, subCost: fi.subCost, predicates: 1}
		default:
			return e.analyzePredicate(x.Expr, rs)
		}
	case *sqlparse.BetweenExpr:
		fi := e.exprFuncInfo(x.Expr, rs)
		fiLo := e.exprFuncInfo(x.Lo, rs)
		fiHi := e.exprFuncInfo(x.Hi, rs)
		info := predInfo{
			funcCostRow: fi.costPerRow + fiLo.costPerRow + fiHi.costPerRow,
			subCost:     fi.subCost + fiLo.subCost + fiHi.subCost,
			predicates:  1,
		}
		info.selectivity = e.rangeSelectivity(x.Expr, x.Lo, x.Hi, rs)
		if x.Not {
			info.selectivity = clamp01(1 - info.selectivity)
		}
		return info
	case *sqlparse.InExpr:
		info := predInfo{predicates: 1}
		fi := e.exprFuncInfo(x.Expr, rs)
		info.funcCostRow += fi.costPerRow
		info.subCost += fi.subCost
		switch {
		case x.Subquery != nil:
			sub := e.estimateSelect(x.Subquery, rs)
			info.subCost += sub.Cost
			info.selectivity = 0.3
		default:
			k := float64(len(x.List))
			if _, col := e.columnOf(x.Expr, rs); col != nil && col.Distinct > 0 && !e.Uniform {
				info.selectivity = clamp01(k / float64(col.Distinct))
			} else {
				info.selectivity = clamp01(k * optimizerEqSel)
			}
		}
		if x.Not {
			info.selectivity = clamp01(1 - info.selectivity)
		}
		return info
	case *sqlparse.ExistsExpr:
		sub := e.estimateSelect(x.Subquery, rs)
		sel := 0.7
		if x.Not {
			sel = 0.3
		}
		return predInfo{selectivity: sel, subCost: sub.Cost, predicates: 1}
	case *sqlparse.SubqueryExpr:
		sub := e.estimateSelect(x.Select, rs)
		return predInfo{selectivity: 0.5, subCost: sub.Cost, predicates: 1}
	default:
		// Bare expression used as a condition.
		fi := e.exprFuncInfo(expr, rs)
		return predInfo{selectivity: defaultRangeSel, funcCostRow: fi.costPerRow, subCost: fi.subCost, predicates: 1}
	}
}

// analyzeComparison handles col-op-value, col-op-col (join), and
// expression comparisons, including index detection.
func (e *estimator) analyzeComparison(x *sqlparse.BinaryExpr, rs *relSet) predInfo {
	info := predInfo{predicates: 1, selectivity: defaultRangeSel}
	fiL := e.exprFuncInfo(x.Left, rs)
	fiR := e.exprFuncInfo(x.Right, rs)
	info.funcCostRow = fiL.costPerRow + fiR.costPerRow
	info.subCost = fiL.subCost + fiR.subCost

	if x.Op == "LIKE" {
		info.selectivity = defaultLikeSel
		if lit, ok := x.Right.(*sqlparse.Literal); ok && strings.HasPrefix(strings.Trim(lit.Text, "'"), "%") {
			info.selectivity = 0.15
		}
		return info
	}

	lRel, lCol := e.columnOf(x.Left, rs)
	rRel, rCol := e.columnOf(x.Right, rs)

	// Join predicate: columns of two different relations.
	if lCol != nil && rCol != nil && lRel != rRel && x.Op == "=" {
		d := math.Max(float64(lCol.Distinct), float64(rCol.Distinct))
		if e.Uniform {
			d = math.Max(math.Min(float64(lCol.Distinct), float64(rCol.Distinct)), 1)
		}
		if d < 1 {
			d = 1
		}
		info.selectivity = 1 / d
		return info
	}

	// Column vs literal/expression.
	col := lCol
	rel := lRel
	var lit *sqlparse.Literal
	if l, ok := x.Right.(*sqlparse.Literal); ok {
		lit = l
	}
	if col == nil {
		col = rCol
		rel = rRel
		if l, ok := x.Left.(*sqlparse.Literal); ok {
			lit = l
		}
	}

	switch x.Op {
	case "=":
		if e.Uniform {
			info.selectivity = optimizerEqSel
		} else if col != nil && col.Distinct > 0 {
			info.selectivity = 1 / float64(col.Distinct)
		} else {
			info.selectivity = defaultEqSel
		}
		// Index-seek detection: selective equality on a real column
		// with literal operand.
		if rel != nil && rel.table != nil && col != nil && lit != nil &&
			float64(col.Distinct) > float64(rel.table.Rows)/50 {
			rel.indexed = true
			rel.seekSel = info.selectivity
		}
	case "<", ">", "<=", ">=", "!<", "!>":
		if e.Uniform {
			info.selectivity = optimizerRange
		} else if col != nil && lit != nil && lit.Kind == "number" && col.Max > col.Min {
			frac := (lit.Value - col.Min) / (col.Max - col.Min)
			frac = clamp01(frac)
			if x.Op == "<" || x.Op == "<=" || x.Op == "!>" {
				info.selectivity = math.Max(frac, 0.0005)
			} else {
				info.selectivity = math.Max(1-frac, 0.0005)
			}
		} else {
			info.selectivity = defaultRangeSel
		}
	case "<>", "!=":
		if col != nil && col.Distinct > 0 && !e.Uniform {
			info.selectivity = clamp01(1 - 1/float64(col.Distinct))
		} else {
			info.selectivity = 0.95
		}
	}
	return info
}

// rangeSelectivity estimates x BETWEEN lo AND hi.
func (e *estimator) rangeSelectivity(expr, lo, hi sqlparse.Expr, rs *relSet) float64 {
	if e.Uniform {
		return optimizerRange * optimizerRange * 4 // fixed guess
	}
	_, col := e.columnOf(expr, rs)
	loV, loOK := constValue(lo)
	hiV, hiOK := constValue(hi)
	if col != nil && loOK && hiOK && col.Max > col.Min {
		frac := (hiV - loV) / (col.Max - col.Min)
		return clamp01(math.Max(frac, 1e-6))
	}
	return 0.05
}

// constValue evaluates constant arithmetic (e.g. 156.52-0.2) to a value.
func constValue(e sqlparse.Expr) (float64, bool) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		if x.Kind == "number" {
			return x.Value, true
		}
	case *sqlparse.UnaryExpr:
		if v, ok := constValue(x.Expr); ok {
			if x.Op == "-" {
				return -v, true
			}
			return v, true
		}
	case *sqlparse.BinaryExpr:
		l, lok := constValue(x.Left)
		r, rok := constValue(x.Right)
		if lok && rok {
			switch x.Op {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			case "/":
				if r != 0 {
					return l / r, true
				}
			}
		}
	}
	return 0, false
}

// columnOf digs the principal column reference out of an operand
// expression (possibly wrapped in arithmetic or functions).
func (e *estimator) columnOf(expr sqlparse.Expr, rs *relSet) (*relation, *Column) {
	switch x := expr.(type) {
	case *sqlparse.ColumnRef:
		return rs.column(x)
	case *sqlparse.BinaryExpr:
		if r, c := e.columnOf(x.Left, rs); c != nil {
			return r, c
		}
		return e.columnOf(x.Right, rs)
	case *sqlparse.UnaryExpr:
		return e.columnOf(x.Expr, rs)
	case *sqlparse.CastExpr:
		return e.columnOf(x.Expr, rs)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			if r, c := e.columnOf(a, rs); c != nil {
				return r, c
			}
		}
	}
	return nil, nil
}

// funcInfo describes the function-evaluation cost of an expression.
type funcInfo struct {
	costPerRow   float64
	subCost      float64
	hasAggregate bool
}

func (e *estimator) exprFuncInfo(expr sqlparse.Expr, rs *relSet) funcInfo {
	var fi funcInfo
	e.collectFuncInfo(expr, rs, &fi)
	return fi
}

func (e *estimator) collectFuncInfo(expr sqlparse.Expr, rs *relSet, fi *funcInfo) {
	switch x := expr.(type) {
	case *sqlparse.FuncCall:
		if f := e.cat.Function(x.BareName); f != nil {
			fi.costPerRow += f.CostPerCall
			if f.Aggregate {
				fi.hasAggregate = true
			}
		} else {
			fi.costPerRow += 1e-6 // unknown function, nominal cost
		}
		for _, a := range x.Args {
			e.collectFuncInfo(a, rs, fi)
		}
	case *sqlparse.BinaryExpr:
		e.collectFuncInfo(x.Left, rs, fi)
		e.collectFuncInfo(x.Right, rs, fi)
	case *sqlparse.UnaryExpr:
		e.collectFuncInfo(x.Expr, rs, fi)
	case *sqlparse.CastExpr:
		fi.costPerRow += 4e-8
		e.collectFuncInfo(x.Expr, rs, fi)
	case *sqlparse.CaseExpr:
		if x.Operand != nil {
			e.collectFuncInfo(x.Operand, rs, fi)
		}
		for _, w := range x.Whens {
			e.collectFuncInfo(w.When, rs, fi)
			e.collectFuncInfo(w.Then, rs, fi)
		}
		if x.Else != nil {
			e.collectFuncInfo(x.Else, rs, fi)
		}
	case *sqlparse.SubqueryExpr:
		sub := e.estimateSelect(x.Select, rs)
		fi.subCost += sub.Cost
	case *sqlparse.ExistsExpr:
		sub := e.estimateSelect(x.Subquery, rs)
		fi.subCost += sub.Cost
	case *sqlparse.InExpr:
		e.collectFuncInfo(x.Expr, rs, fi)
		for _, item := range x.List {
			e.collectFuncInfo(item, rs, fi)
		}
		if x.Subquery != nil {
			sub := e.estimateSelect(x.Subquery, rs)
			fi.subCost += sub.Cost
		}
	case *sqlparse.BetweenExpr:
		e.collectFuncInfo(x.Expr, rs, fi)
		e.collectFuncInfo(x.Lo, rs, fi)
		e.collectFuncInfo(x.Hi, rs, fi)
	}
}

// groupCount estimates the number of groups for GROUP BY expressions.
func (e *estimator) groupCount(groupBy []sqlparse.Expr, rs *relSet, inputRows float64) float64 {
	product := 1.0
	for _, g := range groupBy {
		if cr, ok := g.(*sqlparse.ColumnRef); ok {
			if _, col := rs.column(cr); col != nil && col.Distinct > 0 {
				product *= float64(col.Distinct)
				continue
			}
		}
		product *= 100 // default distinct guess
	}
	return math.Max(math.Min(product, inputRows), 1)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
