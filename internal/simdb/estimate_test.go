package simdb

import (
	"testing"

	"repro/internal/sqlparse"
)

func mustExpr(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.ParseOne("SELECT 1 FROM PhotoObj WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt.(*sqlparse.SelectStmt).Where
}

func TestConstValueArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
		ok   bool
	}{
		{"ra > 156.519031-0.2", 156.319031, true},
		{"ra > 10+5", 15, true},
		{"ra > 2*3", 6, true},
		{"ra > 10/4", 2.5, true},
		{"ra > -5", -5, true},
		{"ra > dec", 0, false},
	}
	for _, c := range cases {
		e := mustExpr(t, c.src).(*sqlparse.BinaryExpr)
		v, ok := constValue(e.Right)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.src, ok, c.ok)
			continue
		}
		if ok && (v-c.want > 1e-9 || c.want-v > 1e-9) {
			t.Errorf("%q: v = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestConstValueDivByZero(t *testing.T) {
	e := mustExpr(t, "ra > 1/0").(*sqlparse.BinaryExpr)
	if _, ok := constValue(e.Right); ok {
		t.Fatal("division by zero should not fold")
	}
}

func newTestRelSet(t *testing.T, cat *Catalog) *relSet {
	t.Helper()
	rs := newRelSet(nil)
	pt := cat.Table("PhotoObj")
	rs.add(&relation{alias: "PhotoObj", table: pt, rows: float64(pt.Rows)})
	return rs
}

func TestEqualitySelectivityUsesDistinct(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	// type has 7 distinct values -> selectivity 1/7.
	info := est.analyzePredicate(mustExpr(t, "type = 6"), rs)
	if info.selectivity < 0.1 || info.selectivity > 0.2 {
		t.Fatalf("selectivity = %v, want ~1/7", info.selectivity)
	}
}

func TestUniformModeIgnoresStatistics(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat, Uniform: true}
	rs := newTestRelSet(t, cat)
	info := est.analyzePredicate(mustExpr(t, "type = 6"), rs)
	if info.selectivity != optimizerEqSel {
		t.Fatalf("uniform selectivity = %v, want %v", info.selectivity, optimizerEqSel)
	}
}

func TestAndMultipliesOrUnions(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	and := est.analyzePredicate(mustExpr(t, "type = 6 AND mode = 1"), rs)
	or := est.analyzePredicate(mustExpr(t, "type = 6 OR mode = 1"), rs)
	if and.selectivity >= or.selectivity {
		t.Fatalf("AND (%v) must be more selective than OR (%v)", and.selectivity, or.selectivity)
	}
	if and.predicates != 2 || or.predicates != 2 {
		t.Fatal("predicate counts")
	}
}

func TestNotInverts(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	pos := est.analyzePredicate(mustExpr(t, "type = 6"), rs)
	neg := est.analyzePredicate(mustExpr(t, "NOT type = 6"), rs)
	if d := pos.selectivity + neg.selectivity; d < 0.999 || d > 1.001 {
		t.Fatalf("NOT should complement: %v + %v", pos.selectivity, neg.selectivity)
	}
}

func TestBetweenSelectivityProportionalToWidth(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	narrow := est.analyzePredicate(mustExpr(t, "ra BETWEEN 180 AND 181"), rs)
	wide := est.analyzePredicate(mustExpr(t, "ra BETWEEN 0 AND 180"), rs)
	if narrow.selectivity >= wide.selectivity {
		t.Fatalf("narrow (%v) should be more selective than wide (%v)",
			narrow.selectivity, wide.selectivity)
	}
	if wide.selectivity < 0.4 || wide.selectivity > 0.6 {
		t.Fatalf("half-range selectivity = %v, want ~0.5", wide.selectivity)
	}
}

func TestInListSelectivityScalesWithK(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	one := est.analyzePredicate(mustExpr(t, "type IN (3)"), rs)
	three := est.analyzePredicate(mustExpr(t, "type IN (3, 4, 5)"), rs)
	if three.selectivity < 2.9*one.selectivity || three.selectivity > 3.1*one.selectivity {
		t.Fatalf("IN selectivity should scale with list size: %v vs %v",
			one.selectivity, three.selectivity)
	}
}

func TestFunctionCostAccumulates(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	info := est.analyzePredicate(mustExpr(t, "flags & dbo.fPhotoFlags('BLENDED') > 0"), rs)
	f := cat.Function("fPhotoFlags")
	if info.funcCostRow < f.CostPerCall {
		t.Fatalf("funcCostRow = %v, want >= %v", info.funcCostRow, f.CostPerCall)
	}
}

func TestIndexSeekDetection(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	rs := newTestRelSet(t, cat)
	// objid is near-unique: equality on it should mark the relation
	// indexed.
	est.analyzePredicate(mustExpr(t, "objid = 1237648720693755918"), rs)
	if !rs.rels[0].indexed {
		t.Fatal("high-distinct equality should trigger index seek")
	}
	// type (7 distinct values) should not.
	rs2 := newTestRelSet(t, cat)
	est.analyzePredicate(mustExpr(t, "type = 6"), rs2)
	if rs2.rels[0].indexed {
		t.Fatal("low-distinct equality must not trigger index seek")
	}
}

func TestJoinSelectivityUsesKeyDistinct(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	stmt, err := sqlparse.ParseOne(
		"SELECT 1 FROM SpecObj AS s, PhotoObj AS p WHERE s.bestobjid = p.objid")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sqlparse.SelectStmt)
	p := est.estimateSelect(sel, nil)
	spec := float64(cat.Table("SpecObj").Rows)
	// Equi-join on the key: output should be around |SpecObj|, far
	// below the cross product.
	if p.Rows > spec*100 {
		t.Fatalf("join estimate %v is too close to cross product", p.Rows)
	}
	if p.Rows < 1 {
		t.Fatalf("join estimate %v collapsed to zero", p.Rows)
	}
}

func TestScalarAggregateOneRow(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	stmt, _ := sqlparse.ParseOne("SELECT COUNT(*) FROM Galaxy WHERE r < 22")
	p := est.estimateSelect(stmt.(*sqlparse.SelectStmt), nil)
	if p.Rows != 1 {
		t.Fatalf("scalar aggregate rows = %v, want 1", p.Rows)
	}
}

func TestGroupByCapsAtDistinct(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	stmt, _ := sqlparse.ParseOne("SELECT camcol, count(*) FROM PhotoObj GROUP BY camcol")
	p := est.estimateSelect(stmt.(*sqlparse.SelectStmt), nil)
	if p.Rows != 6 {
		t.Fatalf("group count = %v, want 6 (camcol distinct)", p.Rows)
	}
}

func TestTopCapsRows(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	stmt, _ := sqlparse.ParseOne("SELECT TOP 10 objid FROM PhotoObj")
	p := est.estimateSelect(stmt.(*sqlparse.SelectStmt), nil)
	if p.Rows != 10 {
		t.Fatalf("TOP rows = %v, want 10", p.Rows)
	}
}

func TestUnionAllAdds(t *testing.T) {
	cat := NewSDSSCatalog()
	est := &estimator{cat: cat}
	stmt, _ := sqlparse.ParseOne("SELECT TOP 10 objid FROM PhotoObj UNION ALL SELECT TOP 20 objid FROM Galaxy")
	p := est.estimateSelect(stmt.(*sqlparse.SelectStmt), nil)
	if p.Rows != 30 {
		t.Fatalf("UNION ALL rows = %v, want 30", p.Rows)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Fatal("clamp01")
	}
}
