package simdb

import "testing"

func TestElapsedAtLeastCPUTime(t *testing.T) {
	en := sdssEngine()
	queries := []string{
		"SELECT ra FROM PhotoObj WHERE type = 6",
		"SELECT COUNT(*) FROM Galaxy WHERE r < 22",
		"SELECT * FROM PhotoTag WHERE objId=0x112d075f80360018",
	}
	for _, q := range queries {
		r := en.Execute(q)
		if r.Error != Success {
			t.Fatalf("%q: %+v", q, r)
		}
		if r.Elapsed < r.CPUTime {
			t.Fatalf("%q: elapsed %v < cpu %v", q, r.Elapsed, r.CPUTime)
		}
		if r.Elapsed <= 0 {
			t.Fatalf("%q: elapsed must be positive", q)
		}
	}
}

func TestElapsedDeterministic(t *testing.T) {
	en := sdssEngine()
	q := "SELECT ra FROM PhotoObj WHERE type = 6"
	if en.Execute(q).Elapsed != en.Execute(q).Elapsed {
		t.Fatal("elapsed must be deterministic per statement")
	}
}

func TestElapsedOnErrorPaths(t *testing.T) {
	en := sdssEngine()
	if r := en.Execute("not sql"); r.Elapsed != 0 {
		t.Fatalf("severe: elapsed = %v, want 0", r.Elapsed)
	}
	r := en.Execute("SELECT nocolumn FROM PhotoObj")
	if r.Error != NonSevere || r.Elapsed < r.CPUTime {
		t.Fatalf("non-severe: %+v", r)
	}
}
