package simdb

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
)

// SemanticError reports a name-resolution failure: the query parsed but
// references schema objects that do not exist in the catalog. The real
// DBMS would accept the statement syntactically and fail at binding
// time, which the paper's workload records as a non-severe error.
type SemanticError struct {
	Kind string // "table", "column", "function", "procedure"
	Name string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("simdb: unknown %s %q", e.Kind, e.Name)
}

// scope is the name-resolution environment of one SELECT, chained to
// enclosing scopes for correlated subqueries.
type scope struct {
	parent *scope
	// tables maps alias (or bare table name) -> catalog table; derived
	// tables map to nil with their column set in derived.
	tables  map[string]*Table
	derived map[string]map[string]bool // alias -> exported column names (nil = any)
	order   []string                   // resolution order for bare columns
}

func newScope(parent *scope) *scope {
	return &scope{
		parent:  parent,
		tables:  map[string]*Table{},
		derived: map[string]map[string]bool{},
	}
}

func (s *scope) addTable(alias string, t *Table) {
	key := strings.ToLower(alias)
	s.tables[key] = t
	s.order = append(s.order, key)
}

func (s *scope) addDerived(alias string, cols map[string]bool) {
	key := strings.ToLower(alias)
	s.derived[key] = cols
	s.order = append(s.order, key)
}

// resolveQualified resolves qualifier.column. It reports ok=false when
// the qualifier is unknown; col may be nil for derived tables.
func (s *scope) resolveQualified(qualifier, column string) (col *Column, ok bool) {
	key := strings.ToLower(qualifier)
	for sc := s; sc != nil; sc = sc.parent {
		if t, found := sc.tables[key]; found {
			if t == nil {
				return nil, true
			}
			c := t.Column(column)
			if c == nil {
				return nil, false
			}
			return c, true
		}
		if cols, found := sc.derived[key]; found {
			if cols == nil {
				return nil, true
			}
			return nil, cols[strings.ToLower(column)]
		}
	}
	return nil, false
}

// resolveBare resolves an unqualified column against every table in
// scope (innermost first).
func (s *scope) resolveBare(column string) (col *Column, ok bool) {
	for sc := s; sc != nil; sc = sc.parent {
		for _, key := range sc.order {
			if t := sc.tables[key]; t != nil {
				if c := t.Column(column); c != nil {
					return c, true
				}
				continue
			}
			if cols, found := sc.derived[key]; found {
				if cols == nil || cols[strings.ToLower(column)] {
					return nil, true
				}
			}
		}
	}
	return nil, false
}

// analyzer performs semantic analysis of a statement against a catalog.
type analyzer struct {
	cat *Catalog
}

// Analyze checks that every table, column, function, and procedure a
// statement references exists in the catalog. It returns nil on success
// or the first *SemanticError found.
func (c *Catalog) Analyze(stmt sqlparse.Statement) error {
	a := &analyzer{cat: c}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		_, err := a.analyzeSelect(s, nil)
		return err
	case *sqlparse.InsertStmt:
		// INSERT targets user-writable space (SDSS MyDB); accept the
		// target but validate a SELECT source.
		if s.Select != nil {
			_, err := a.analyzeSelect(s.Select, nil)
			return err
		}
		return nil
	case *sqlparse.UpdateStmt:
		t := a.lookupTable(s.Table)
		if t == nil && !isUserSpace(s.Table) {
			return &SemanticError{Kind: "table", Name: tableDisplay(s.Table)}
		}
		return nil
	case *sqlparse.DeleteStmt:
		t := a.lookupTable(s.Table)
		if t == nil && !isUserSpace(s.Table) {
			return &SemanticError{Kind: "table", Name: tableDisplay(s.Table)}
		}
		return nil
	case *sqlparse.CreateStmt, *sqlparse.AlterStmt:
		return nil // DDL in user space
	case *sqlparse.DropStmt:
		return nil
	case *sqlparse.ExecStmt:
		bare := s.Proc
		if i := strings.LastIndex(bare, "."); i >= 0 {
			bare = bare[i+1:]
		}
		if c.Procedure(bare) == nil {
			return &SemanticError{Kind: "procedure", Name: s.Proc}
		}
		return nil
	default:
		return nil
	}
}

// analyzeSelect resolves one SELECT and returns its scope.
func (a *analyzer) analyzeSelect(sel *sqlparse.SelectStmt, parent *scope) (*scope, error) {
	sc := newScope(parent)
	for _, ref := range sel.From {
		if err := a.bindTableRef(ref, sc); err != nil {
			return nil, err
		}
	}
	for _, item := range sel.Columns {
		if item.Star {
			continue
		}
		if err := a.checkExpr(item.Expr, sc); err != nil {
			return nil, err
		}
	}
	if sel.Where != nil {
		if err := a.checkExpr(sel.Where, sc); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := a.checkExpr(g, sc); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := a.checkExpr(sel.Having, sc); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may reference select-list aliases; tolerate
		// resolution failures against aliases only.
		if err := a.checkExpr(o.Expr, sc); err != nil {
			if se, ok := err.(*SemanticError); ok && se.Kind == "column" && selectListAlias(sel, se.Name) {
				continue
			}
			return nil, err
		}
	}
	if sel.Next != nil {
		if _, err := a.analyzeSelect(sel.Next, parent); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func selectListAlias(sel *sqlparse.SelectStmt, name string) bool {
	for _, item := range sel.Columns {
		if strings.EqualFold(item.Alias, name) {
			return true
		}
	}
	return false
}

func (a *analyzer) bindTableRef(ref sqlparse.TableRef, sc *scope) error {
	switch r := ref.(type) {
	case *sqlparse.TableName:
		t := a.lookupTable(r)
		if t == nil {
			if isUserSpace(r) {
				// MyDB/user tables are outside the shared catalog; treat
				// as an opaque derived relation accepting any column.
				alias := r.Alias
				if alias == "" {
					alias = r.Parts[len(r.Parts)-1]
				}
				sc.addDerived(alias, nil)
				return nil
			}
			return &SemanticError{Kind: "table", Name: tableDisplay(r)}
		}
		if r.Alias != "" {
			sc.addTable(r.Alias, t)
		} else {
			sc.addTable(r.Parts[len(r.Parts)-1], t)
		}
		return nil
	case *sqlparse.JoinRef:
		if err := a.bindTableRef(r.Left, sc); err != nil {
			return err
		}
		if err := a.bindTableRef(r.Right, sc); err != nil {
			return err
		}
		if r.On != nil {
			return a.checkExpr(r.On, sc)
		}
		return nil
	case *sqlparse.SubqueryRef:
		inner, err := a.analyzeSelect(r.Select, sc.parent)
		if err != nil {
			return err
		}
		_ = inner
		cols := exportedColumns(r.Select)
		alias := r.Alias
		if alias == "" {
			alias = "_derived"
		}
		sc.addDerived(alias, cols)
		return nil
	}
	return nil
}

// exportedColumns lists the output column names of a SELECT; nil means
// "any column" (SELECT * passthrough).
func exportedColumns(sel *sqlparse.SelectStmt) map[string]bool {
	cols := map[string]bool{}
	for _, item := range sel.Columns {
		if item.Star {
			return nil
		}
		switch {
		case item.Alias != "":
			cols[strings.ToLower(item.Alias)] = true
		default:
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				cols[strings.ToLower(cr.Name())] = true
			}
		}
	}
	return cols
}

func (a *analyzer) lookupTable(name *sqlparse.TableName) *Table {
	if name == nil || len(name.Parts) == 0 {
		return nil
	}
	return a.cat.Table(name.Parts[len(name.Parts)-1])
}

// isUserSpace reports whether the table reference targets the user's
// private database (SDSS CasJobs MyDB convention).
func isUserSpace(name *sqlparse.TableName) bool {
	for _, p := range name.Parts[:max(len(name.Parts)-1, 0)] {
		lp := strings.ToLower(p)
		if strings.HasPrefix(lp, "mydb") || strings.HasPrefix(lp, "sdsssql") {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func tableDisplay(name *sqlparse.TableName) string {
	return strings.Join(name.Parts, ".")
}

func (a *analyzer) checkExpr(e sqlparse.Expr, sc *scope) error {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		return a.checkColumn(x, sc)
	case *sqlparse.BinaryExpr:
		if err := a.checkExpr(x.Left, sc); err != nil {
			return err
		}
		return a.checkExpr(x.Right, sc)
	case *sqlparse.UnaryExpr:
		return a.checkExpr(x.Expr, sc)
	case *sqlparse.FuncCall:
		if a.cat.Function(x.BareName) == nil {
			return &SemanticError{Kind: "function", Name: x.Name}
		}
		for _, arg := range x.Args {
			if err := a.checkExpr(arg, sc); err != nil {
				return err
			}
		}
		return nil
	case *sqlparse.CastExpr:
		return a.checkExpr(x.Expr, sc)
	case *sqlparse.CaseExpr:
		if x.Operand != nil {
			if err := a.checkExpr(x.Operand, sc); err != nil {
				return err
			}
		}
		for _, w := range x.Whens {
			if err := a.checkExpr(w.When, sc); err != nil {
				return err
			}
			if err := a.checkExpr(w.Then, sc); err != nil {
				return err
			}
		}
		if x.Else != nil {
			return a.checkExpr(x.Else, sc)
		}
		return nil
	case *sqlparse.SubqueryExpr:
		_, err := a.analyzeSelect(x.Select, sc)
		return err
	case *sqlparse.ExistsExpr:
		_, err := a.analyzeSelect(x.Subquery, sc)
		return err
	case *sqlparse.InExpr:
		if err := a.checkExpr(x.Expr, sc); err != nil {
			return err
		}
		for _, item := range x.List {
			if err := a.checkExpr(item, sc); err != nil {
				return err
			}
		}
		if x.Subquery != nil {
			_, err := a.analyzeSelect(x.Subquery, sc)
			return err
		}
		return nil
	case *sqlparse.BetweenExpr:
		if err := a.checkExpr(x.Expr, sc); err != nil {
			return err
		}
		if err := a.checkExpr(x.Lo, sc); err != nil {
			return err
		}
		return a.checkExpr(x.Hi, sc)
	default:
		return nil
	}
}

func (a *analyzer) checkColumn(c *sqlparse.ColumnRef, sc *scope) error {
	if sc == nil {
		return nil
	}
	switch len(c.Parts) {
	case 0:
		return nil
	case 1:
		if _, ok := sc.resolveBare(c.Parts[0]); !ok {
			return &SemanticError{Kind: "column", Name: c.Parts[0]}
		}
		return nil
	default:
		qualifier := c.Parts[len(c.Parts)-2]
		column := c.Parts[len(c.Parts)-1]
		if _, ok := sc.resolveQualified(qualifier, column); !ok {
			return &SemanticError{Kind: "column", Name: strings.Join(c.Parts, ".")}
		}
		return nil
	}
}
