package simdb

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"repro/internal/sqlparse"
)

// ErrorClass is the paper's three-valued query error label
// (Section 4.1): success (0), non-severe error (1), or severe error
// (-1, rejected by the portal before reaching the database).
type ErrorClass int

// Error classes in the order used for classification targets.
const (
	Severe    ErrorClass = iota // invalid, rejected before execution
	Success                     // executed without error
	NonSevere                   // reached the database but failed
)

// String returns the workload label string of the class.
func (e ErrorClass) String() string {
	switch e {
	case Severe:
		return "severe"
	case Success:
		return "success"
	case NonSevere:
		return "non_severe"
	default:
		return "unknown"
	}
}

// NumErrorClasses is the cardinality of ErrorClass.
const NumErrorClasses = 3

// Result is the outcome of (simulated) query execution: the three
// ground-truth labels the paper extracts from the SDSS SqlLog, plus
// the elapsed wall-clock time (the SqlLog "elapsed" column; predicting
// it is listed as future work in Section 8).
type Result struct {
	Error      ErrorClass
	AnswerSize int64   // rows returned; -1 when the query did not run
	CPUTime    float64 // "busy" seconds; 0 when the query did not run
	Elapsed    float64 // wall-clock seconds including queueing and I/O
}

// Engine simulates query execution against a catalog. Answer sizes and
// CPU times include deterministic hash-seeded multiplicative noise so
// that labels are a learnable-but-noisy function of the query text —
// matching a real system where the same statement gets slightly
// different timings across runs but aggregated labels are stable.
type Engine struct {
	Catalog *Catalog
	// AnswerNoise and TimeNoise are log-normal sigma parameters.
	AnswerNoise float64
	TimeNoise   float64
	// FlakyRate is the probability a valid query still fails
	// non-severely (transient resource errors in the real system).
	FlakyRate float64
	// CostScale multiplies CPU times (0 means 1). Different services
	// run on very different hardware: the SQLShare deployment served
	// ad-hoc analytics from modest shared VMs, so its per-query CPU
	// times are orders of magnitude above an equivalent scan on the
	// SDSS servers.
	CostScale float64
}

// maxAnswerRows is the portal's result-set cap.
const maxAnswerRows = 1_000_000_000

// NewEngine creates an engine with the default noise configuration.
func NewEngine(cat *Catalog) *Engine {
	return &Engine{Catalog: cat, AnswerNoise: 0.45, TimeNoise: 0.35, FlakyRate: 0.008}
}

// Execute parses, analyzes, and "runs" a raw statement, producing its
// ground-truth labels.
func (en *Engine) Execute(query string) Result {
	rng := queryRand(query)
	stmts, err := sqlparse.Parse(query)
	if err != nil {
		// Rejected by the portal: the statement never reaches the
		// database (the paper's severe class).
		return Result{Error: Severe, AnswerSize: -1, CPUTime: 0}
	}
	scale := en.CostScale
	if scale <= 0 {
		scale = 1
	}
	var total Result
	total.Error = Success
	for _, stmt := range stmts {
		r := en.executeStatement(stmt, rng)
		r.CPUTime *= scale
		if r.Error != Success {
			return Result{Error: r.Error, AnswerSize: -1, CPUTime: r.CPUTime, Elapsed: round3(r.CPUTime * 1.2)}
		}
		total.AnswerSize += r.AnswerSize
		total.CPUTime += r.CPUTime
	}
	if rng.Float64() < en.FlakyRate {
		cpu := round3(total.CPUTime * rng.Float64())
		return Result{Error: NonSevere, AnswerSize: -1, CPUTime: cpu, Elapsed: round3(cpu * 1.3)}
	}
	total.CPUTime = round3(total.CPUTime)
	// Wall-clock time adds I/O stall and queueing on top of CPU: a
	// multiplicative factor for I/O-bound phases plus a queue delay
	// drawn from the server's (hash-deterministic) load.
	ioFactor := 1.1 + 0.8*rng.Float64()
	queueDelay := 0.05 * lognoise(rng, 1.5)
	total.Elapsed = round3(total.CPUTime*ioFactor + queueDelay)
	return total
}

func (en *Engine) executeStatement(stmt sqlparse.Statement, rng *rand.Rand) Result {
	if err := en.Catalog.Analyze(stmt); err != nil {
		// Binding failure inside the DBMS: non-severe error. The server
		// still spent compile time.
		return Result{Error: NonSevere, AnswerSize: -1, CPUTime: round3(0.002 + 0.01*rng.Float64())}
	}
	est := &estimator{cat: en.Catalog}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		p := est.estimateSelect(s, nil)
		rows := p.Rows * lognoise(rng, en.AnswerNoise)
		cpu := (p.Cost + cpuStatementMin) * lognoise(rng, en.TimeNoise)
		ans := int64(math.Round(rows))
		if ans < 0 {
			ans = 0
		}
		// The access portals cap result sets (the SDSS workload's
		// maximum observed answer size is just under 1e9 rows).
		if ans > maxAnswerRows {
			ans = maxAnswerRows - int64(rng.Intn(1<<26))
		}
		if s.Top != nil && !s.Top.Percent && float64(ans) > s.Top.Count {
			ans = int64(s.Top.Count)
		}
		if isScalarAggregate(s) {
			ans = 1
		}
		return Result{Error: Success, AnswerSize: ans, CPUTime: cpu}
	case *sqlparse.ExecStmt:
		bare := s.Proc
		if i := strings.LastIndex(bare, "."); i >= 0 {
			bare = bare[i+1:]
		}
		proc := en.Catalog.Procedure(bare)
		cpu := proc.CostPerCall * lognoise(rng, en.TimeNoise)
		rows := int64(math.Round(20 * lognoise(rng, 1.2)))
		return Result{Error: Success, AnswerSize: rows, CPUTime: cpu}
	case *sqlparse.InsertStmt:
		cpu := 0.01 + float64(s.Rows)*1e-5
		if s.Select != nil {
			p := est.estimateSelect(s.Select, nil)
			cpu += p.Cost + p.Rows*5e-8
		}
		return Result{Error: Success, AnswerSize: 0, CPUTime: cpu * lognoise(rng, en.TimeNoise)}
	case *sqlparse.UpdateStmt, *sqlparse.DeleteStmt:
		// Writes to shared catalog tables are denied; user-space writes
		// succeed cheaply.
		if en.writesSharedTable(stmt) {
			return Result{Error: NonSevere, AnswerSize: -1, CPUTime: round3(0.001 + 0.005*rng.Float64())}
		}
		return Result{Error: Success, AnswerSize: 0, CPUTime: (0.01 + 0.2*rng.Float64()) * lognoise(rng, en.TimeNoise)}
	case *sqlparse.CreateStmt, *sqlparse.DropStmt, *sqlparse.AlterStmt:
		return Result{Error: Success, AnswerSize: 0, CPUTime: (0.02 + 0.1*rng.Float64()) * lognoise(rng, en.TimeNoise)}
	default:
		return Result{Error: Success, AnswerSize: 0, CPUTime: cpuStatementMin}
	}
}

// writesSharedTable reports whether an UPDATE/DELETE targets a table in
// the shared catalog (which end users cannot modify).
func (en *Engine) writesSharedTable(stmt sqlparse.Statement) bool {
	var name *sqlparse.TableName
	switch s := stmt.(type) {
	case *sqlparse.UpdateStmt:
		name = s.Table
	case *sqlparse.DeleteStmt:
		name = s.Table
	default:
		return false
	}
	if name == nil || isUserSpace(name) {
		return false
	}
	return en.Catalog.Table(name.Parts[len(name.Parts)-1]) != nil
}

// isScalarAggregate reports whether a SELECT has aggregates but no
// GROUP BY, meaning it returns exactly one row.
func isScalarAggregate(sel *sqlparse.SelectStmt) bool {
	if len(sel.GroupBy) > 0 || len(sel.Columns) == 0 {
		return false
	}
	hasAgg := false
	for _, item := range sel.Columns {
		if item.Star {
			return false
		}
		if fc, ok := item.Expr.(*sqlparse.FuncCall); ok {
			switch strings.ToUpper(fc.BareName) {
			case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV", "VAR":
				hasAgg = true
				continue
			}
		}
		return false
	}
	return hasAgg
}

// Optimizer exposes the analytic cost estimate a query optimizer would
// produce: uniformity assumptions, default selectivities, and no
// accounting for CPU-bound function evaluation. The paper's `opt`
// baseline fits a linear regression from this estimate to CPU time and
// finds it transfers poorly (Table 5); the estimate here mis-models the
// simulator in the same qualitative ways.
type Optimizer struct {
	Catalog *Catalog
}

// EstimateCost returns the optimizer's cost estimate for a statement,
// or 0 when the statement does not parse or is not a SELECT.
func (o *Optimizer) EstimateCost(query string) float64 {
	stmts, err := sqlparse.Parse(query)
	if err != nil {
		return 0
	}
	est := &estimator{cat: o.Catalog, Uniform: true}
	total := 0.0
	for _, stmt := range stmts {
		if sel, ok := stmt.(*sqlparse.SelectStmt); ok {
			p := est.estimateSelect(sel, nil)
			// I/O-dominated costing: the optimizer charges for pages
			// read, approximated from rows examined.
			total += p.Cost + p.Rows*1e-7
		}
	}
	return total
}

// EstimateRows returns the optimizer's cardinality estimate.
func (o *Optimizer) EstimateRows(query string) float64 {
	stmts, err := sqlparse.Parse(query)
	if err != nil {
		return 0
	}
	est := &estimator{cat: o.Catalog, Uniform: true}
	total := 0.0
	for _, stmt := range stmts {
		if sel, ok := stmt.(*sqlparse.SelectStmt); ok {
			total += est.estimateSelect(sel, nil).Rows
		}
	}
	return total
}

// queryRand returns a PRNG seeded by the FNV-1a hash of the query text,
// making all simulated noise deterministic per statement.
func queryRand(query string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(query))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// lognoise draws a multiplicative log-normal noise factor e^{sigma*Z}.
func lognoise(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(sigma * rng.NormFloat64())
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
