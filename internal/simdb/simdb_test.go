package simdb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
)

func sdssEngine() *Engine { return NewEngine(NewSDSSCatalog()) }

func TestCatalogLookupCaseInsensitive(t *testing.T) {
	c := NewSDSSCatalog()
	if c.Table("photoobj") == nil || c.Table("PHOTOOBJ") == nil {
		t.Fatal("table lookup should be case-insensitive")
	}
	if c.Function("FPHOTOFLAGS") == nil {
		t.Fatal("function lookup should be case-insensitive")
	}
}

func TestColumnLookup(t *testing.T) {
	c := NewSDSSCatalog()
	pt := c.Table("PhotoObj")
	if pt.Column("RA") == nil || pt.Column("ra") == nil {
		t.Fatal("column lookup should be case-insensitive")
	}
	if pt.Column("nonexistent") != nil {
		t.Fatal("missing column should be nil")
	}
}

func TestAnalyzeValidQuery(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, err := sqlparse.ParseOne("SELECT ra, dec FROM PhotoObj WHERE type = 6")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
}

func TestAnalyzeUnknownTable(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, _ := sqlparse.ParseOne("SELECT x FROM NoSuchTable")
	err := c.Analyze(stmt)
	se, ok := err.(*SemanticError)
	if !ok || se.Kind != "table" {
		t.Fatalf("err = %v, want table SemanticError", err)
	}
}

func TestAnalyzeUnknownColumn(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, _ := sqlparse.ParseOne("SELECT bogus_col FROM PhotoObj")
	err := c.Analyze(stmt)
	se, ok := err.(*SemanticError)
	if !ok || se.Kind != "column" {
		t.Fatalf("err = %v, want column SemanticError", err)
	}
}

func TestAnalyzeUnknownFunction(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, _ := sqlparse.ParseOne("SELECT dbo.fNoSuchFunc(ra) FROM PhotoObj")
	err := c.Analyze(stmt)
	se, ok := err.(*SemanticError)
	if !ok || se.Kind != "function" {
		t.Fatalf("err = %v, want function SemanticError", err)
	}
}

func TestAnalyzeAliasResolution(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, _ := sqlparse.ParseOne("SELECT p.ra FROM PhotoObj AS p WHERE p.type = 6")
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Wrong alias must fail.
	stmt2, _ := sqlparse.ParseOne("SELECT q.ra FROM PhotoObj AS p")
	if err := c.Analyze(stmt2); err == nil {
		t.Fatal("unknown alias should fail")
	}
}

func TestAnalyzeCorrelatedSubquery(t *testing.T) {
	c := NewSDSSCatalog()
	q := `SELECT p.ra FROM PhotoObj AS p WHERE EXISTS
	      (SELECT 1 FROM SpecObj AS s WHERE s.bestobjid = p.objid)`
	stmt, err := sqlparse.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("correlated reference should resolve: %v", err)
	}
}

func TestAnalyzeDerivedTable(t *testing.T) {
	c := NewSDSSCatalog()
	q := "SELECT b.target FROM (SELECT target FROM Servers) b"
	stmt, _ := sqlparse.ParseOne(q)
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("derived column should resolve: %v", err)
	}
	q2 := "SELECT b.missing FROM (SELECT target FROM Servers) b"
	stmt2, _ := sqlparse.ParseOne(q2)
	if err := c.Analyze(stmt2); err == nil {
		t.Fatal("column not exported by derived table should fail")
	}
}

func TestAnalyzeMyDBUserSpace(t *testing.T) {
	c := NewSDSSCatalog()
	q := "SELECT q.anything FROM mydb.MyTable AS q"
	stmt, _ := sqlparse.ParseOne(q)
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("MyDB tables should be opaque: %v", err)
	}
}

func TestAnalyzeExecProcedure(t *testing.T) {
	c := NewSDSSCatalog()
	stmt, _ := sqlparse.ParseOne("EXEC dbo.spGetNeighbors 185.0, 62.8, 0.5")
	if err := c.Analyze(stmt); err != nil {
		t.Fatalf("known procedure: %v", err)
	}
	stmt2, _ := sqlparse.ParseOne("EXEC dbo.spNoSuch 1")
	if err := c.Analyze(stmt2); err == nil {
		t.Fatal("unknown procedure should fail")
	}
}

func TestExecuteSevereOnParseFailure(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("this is not sql at all")
	if r.Error != Severe || r.AnswerSize != -1 || r.CPUTime != 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestExecuteNonSevereOnBadColumn(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("SELECT nocolumn FROM PhotoObj")
	if r.Error != NonSevere || r.AnswerSize != -1 {
		t.Fatalf("result = %+v", r)
	}
	if r.CPUTime <= 0 {
		t.Fatal("binding failure should still cost compile time")
	}
}

func TestExecuteSuccess(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("SELECT ra, dec FROM PhotoObj WHERE objid = 1237648720693755918")
	if r.Error != Success {
		t.Fatalf("result = %+v", r)
	}
	if r.AnswerSize < 0 {
		t.Fatal("successful query should have non-negative answer size")
	}
	if r.CPUTime <= 0 {
		t.Fatal("CPU time should be positive")
	}
}

func TestExecuteDeterministic(t *testing.T) {
	en := sdssEngine()
	q := "SELECT ra FROM PhotoObj WHERE type = 6"
	r1 := en.Execute(q)
	r2 := en.Execute(q)
	if r1 != r2 {
		t.Fatalf("execution must be deterministic: %+v vs %+v", r1, r2)
	}
}

func TestExecuteCountQueryReturnsOneRow(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("SELECT COUNT(*) FROM Galaxy WHERE r < 22")
	if r.Error != Success || r.AnswerSize != 1 {
		t.Fatalf("count query result = %+v", r)
	}
}

func TestExecuteTopCapsAnswer(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("SELECT TOP 10 ra FROM PhotoObj WHERE r < 22")
	if r.Error != Success || r.AnswerSize > 10 {
		t.Fatalf("TOP 10 result = %+v", r)
	}
}

func TestExecuteIndexSeekMuchCheaperThanScan(t *testing.T) {
	en := sdssEngine()
	seek := en.Execute("SELECT ra FROM PhotoObj WHERE objid = 1237648720693755918")
	scan := en.Execute("SELECT ra FROM PhotoObj WHERE extinction_r > 0.01")
	if seek.CPUTime*100 > scan.CPUTime {
		t.Fatalf("index seek (%v s) should be far cheaper than scan (%v s)",
			seek.CPUTime, scan.CPUTime)
	}
}

func TestExecuteFunctionPerRowExpensive(t *testing.T) {
	// The paper's Figure 1b anti-pattern: a function call in the WHERE
	// clause is evaluated once per scanned row.
	en := sdssEngine()
	withFunc := en.Execute("SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0")
	without := en.Execute("SELECT objid FROM PhotoObj WHERE flags & 8 > 0")
	if withFunc.CPUTime < 10*without.CPUTime {
		t.Fatalf("per-row function cost should dominate: with=%v without=%v",
			withFunc.CPUTime, without.CPUTime)
	}
}

func TestExecuteSelectiveQuerySmallAnswer(t *testing.T) {
	en := sdssEngine()
	point := en.Execute("SELECT ra FROM PhotoObj WHERE objid = 1237648720693755918")
	broad := en.Execute("SELECT ra FROM PhotoObj WHERE r < 29")
	if point.AnswerSize > 100 {
		t.Fatalf("point query answer = %d, want tiny", point.AnswerSize)
	}
	if broad.AnswerSize < 1000*point.AnswerSize {
		t.Fatalf("broad query (%d) should dwarf point query (%d)",
			broad.AnswerSize, point.AnswerSize)
	}
}

func TestExecuteJoinCardinality(t *testing.T) {
	en := sdssEngine()
	r := en.Execute(`SELECT s.z FROM SpecObj AS s INNER JOIN PhotoObj AS p
	                 ON s.bestobjid = p.objid WHERE s.zconf > 0.99`)
	if r.Error != Success {
		t.Fatalf("result = %+v", r)
	}
	// Equi-join on a key column should not explode to cross-product.
	if r.AnswerSize > 1_000_000_000 {
		t.Fatalf("join answer exploded: %d", r.AnswerSize)
	}
}

func TestExecuteUpdateSharedTableDenied(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("UPDATE PhotoObj SET ra = 0 WHERE objid = 5")
	if r.Error != NonSevere {
		t.Fatalf("shared-table write should fail: %+v", r)
	}
}

func TestExecuteUpdateUserSpaceAllowed(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("UPDATE mydb.results SET ra = 0 WHERE objid = 5")
	if r.Error != Success {
		t.Fatalf("user-space write should succeed: %+v", r)
	}
}

func TestExecuteCreateDrop(t *testing.T) {
	en := sdssEngine()
	if r := en.Execute("CREATE TABLE mydb.t (x int)"); r.Error != Success {
		t.Fatalf("create = %+v", r)
	}
	if r := en.Execute("DROP TABLE mydb.t"); r.Error != Success {
		t.Fatalf("drop = %+v", r)
	}
}

func TestExecuteExec(t *testing.T) {
	en := sdssEngine()
	r := en.Execute("EXEC dbo.spGetNeighbors 185.0, 62.8, 0.5")
	if r.Error != Success || r.CPUTime <= 0 {
		t.Fatalf("exec = %+v", r)
	}
}

func TestSQLShareCatalogPerUser(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c1 := NewSQLShareCatalog("alice", rng)
	c2 := NewSQLShareCatalog("bob", rng)
	if len(c1.Tables) == 0 || len(c2.Tables) == 0 {
		t.Fatal("user catalogs should have tables")
	}
	for name := range c1.Tables {
		if !strings.HasPrefix(name, "alice_") {
			t.Fatalf("table %q should carry the user prefix", name)
		}
	}
	for name := range c1.Tables {
		if _, ok := c2.Tables[name]; ok {
			t.Fatal("users should not share table names")
		}
	}
}

func TestSQLShareEngineRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewSQLShareCatalog("alice", rng)
	names := c.TableNames()
	en := NewEngine(c)
	r := en.Execute("SELECT * FROM " + names[0])
	if r.Error != Success {
		t.Fatalf("result = %+v", r)
	}
}

func TestOptimizerIgnoresFunctionCost(t *testing.T) {
	opt := &Optimizer{Catalog: NewSDSSCatalog()}
	withFunc := opt.EstimateCost("SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0")
	without := opt.EstimateCost("SELECT objid FROM PhotoObj WHERE flags & 8 > 0")
	// The optimizer does not charge per-row function costs, so the two
	// should be within a small factor (unlike true execution).
	ratio := withFunc / without
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("optimizer should not see function cost: ratio = %v", ratio)
	}
}

func TestOptimizerZeroOnParseFailure(t *testing.T) {
	opt := &Optimizer{Catalog: NewSDSSCatalog()}
	if got := opt.EstimateCost("not sql"); got != 0 {
		t.Fatalf("cost = %v, want 0", got)
	}
}

func TestOptimizerVsTrueCostDiverge(t *testing.T) {
	// The paper's premise: the analytic model mis-ranks queries that
	// true execution distinguishes (Section 6.2.2).
	cat := NewSDSSCatalog()
	en := NewEngine(cat)
	opt := &Optimizer{Catalog: cat}
	q1 := "SELECT objid FROM PhotoObj WHERE flags & dbo.fPhotoFlags('BLENDED') > 0"
	q2 := "SELECT objid FROM PhotoObj WHERE flags & 8 > 0"
	trueRatio := en.Execute(q1).CPUTime / en.Execute(q2).CPUTime
	optRatio := opt.EstimateCost(q1) / opt.EstimateCost(q2)
	if trueRatio < 5*optRatio {
		t.Fatalf("true ratio %v should exceed optimizer ratio %v", trueRatio, optRatio)
	}
}

func TestErrorClassString(t *testing.T) {
	if Severe.String() != "severe" || Success.String() != "success" || NonSevere.String() != "non_severe" {
		t.Fatal("class names must match the workload labels")
	}
	if ErrorClass(99).String() != "unknown" {
		t.Fatal("out-of-range class")
	}
}

// Property: Execute is total and label invariants hold for any input.
func TestExecuteTotalProperty(t *testing.T) {
	en := sdssEngine()
	f := func(s string) bool {
		r := en.Execute(s)
		if r.Error == Success {
			return r.AnswerSize >= 0 && r.CPUTime >= 0
		}
		return r.AnswerSize == -1 && r.CPUTime >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: answer size scales with predicate selectivity direction.
func TestAnswerMonotoneInRangeWidth(t *testing.T) {
	en := sdssEngine()
	narrow := en.Execute("SELECT objid FROM PhotoObj WHERE ra BETWEEN 180 AND 180.1")
	wide := en.Execute("SELECT objid FROM PhotoObj WHERE ra BETWEEN 100 AND 300")
	if narrow.AnswerSize >= wide.AnswerSize {
		t.Fatalf("narrow range (%d) should return fewer rows than wide (%d)",
			narrow.AnswerSize, wide.AnswerSize)
	}
}
