// Package simdb is the execution-environment substitute for the paper's
// database instances. The paper obtains ground-truth labels (error
// class, answer size, CPU time) by running queries against SDSS's
// Catalog Archive Server and SQLShare's backend; we cannot access
// those, so this package simulates execution: a semantic analyzer
// produces error labels, a cardinality model produces answer sizes, and
// a cost model produces CPU times. All three are deterministic
// functions of (query, catalog) plus hash-seeded noise, which gives the
// learnable-but-noisy text-to-label relationship the prediction models
// need.
//
// The package also implements an intentionally imprecise analytic
// Optimizer mirroring the paper's `opt` baseline: a query-optimizer
// cost model with uniformity assumptions that ignores CPU-bound
// function evaluation, which is why it transfers poorly (Section 6.2.2).
package simdb

import (
	"fmt"
	"math/rand"
	"strings"
)

// Column describes one column's statistics.
type Column struct {
	Name     string
	Distinct int64   // number of distinct values
	Min, Max float64 // numeric value range (0,0 for non-numeric)
	NullFrac float64 // fraction of NULL values
}

// Table describes a base table or view.
type Table struct {
	Name    string
	Rows    int64
	Columns []Column

	byName map[string]*Column
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	if t.byName == nil {
		t.byName = make(map[string]*Column, len(t.Columns))
		for i := range t.Columns {
			t.byName[strings.ToLower(t.Columns[i].Name)] = &t.Columns[i]
		}
	}
	return t.byName[strings.ToLower(name)]
}

// Function describes a callable function with its per-call CPU cost in
// seconds. Expensive row-wise functions are the root cause of the
// paper's Figure 1b inefficiency example.
type Function struct {
	Name        string
	CostPerCall float64
	Aggregate   bool
}

// Catalog is the schema plus statistics of one database instance.
type Catalog struct {
	Name      string
	Tables    map[string]*Table
	Functions map[string]*Function
	// Procedures callable via EXEC.
	Procedures map[string]*Function
}

// Table resolves a table name case-insensitively, ignoring databasename
// and schema qualifiers (db.schema.table).
func (c *Catalog) Table(name string) *Table {
	return c.Tables[strings.ToLower(name)]
}

// Function resolves a function name case-insensitively by its bare name.
func (c *Catalog) Function(name string) *Function {
	return c.Functions[strings.ToLower(name)]
}

// Procedure resolves a stored-procedure name.
func (c *Catalog) Procedure(name string) *Function {
	return c.Procedures[strings.ToLower(name)]
}

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) {
	c.Tables[strings.ToLower(t.Name)] = t
}

// AddFunction registers a function.
func (c *Catalog) AddFunction(f *Function) {
	c.Functions[strings.ToLower(f.Name)] = f
}

// AddProcedure registers a stored procedure.
func (c *Catalog) AddProcedure(f *Function) {
	c.Procedures[strings.ToLower(f.Name)] = f
}

func newCatalog(name string) *Catalog {
	return &Catalog{
		Name:       name,
		Tables:     map[string]*Table{},
		Functions:  map[string]*Function{},
		Procedures: map[string]*Function{},
	}
}

// NewSDSSCatalog builds the synthetic SDSS-like astronomy catalog. The
// table set, the row-count magnitudes (PhotoObj ~ 8e8 rows in DR7), and
// the dbo.f* function library follow the published SDSS CAS schema
// closely enough that generated queries look like real SkyServer
// traffic.
func NewSDSSCatalog() *Catalog {
	c := newCatalog("sdss")

	photoCols := []Column{
		{Name: "objid", Distinct: 794_328_715, Min: 1, Max: 9.3e18},
		{Name: "ra", Distinct: 50_000_000, Min: 0, Max: 360},
		{Name: "dec", Distinct: 50_000_000, Min: -90, Max: 90},
		{Name: "type", Distinct: 7, Min: 0, Max: 6},
		{Name: "flags", Distinct: 100_000, Min: 0, Max: 9.2e18},
		{Name: "status", Distinct: 64, Min: 0, Max: 1e6},
		{Name: "mode", Distinct: 3, Min: 1, Max: 3},
		{Name: "u", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "g", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "r", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "i", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "z", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "petror90_r", Distinct: 200_000, Min: 0, Max: 100},
		{Name: "psfmag_r", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "psfmagerr_u", Distinct: 100_000, Min: 0, Max: 5},
		{Name: "psfmagerr_g", Distinct: 100_000, Min: 0, Max: 5},
		{Name: "modelmag_u", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "modelmag_g", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "flags_g", Distinct: 50_000, Min: 0, Max: 9.2e18},
		{Name: "extinction_r", Distinct: 50_000, Min: 0, Max: 2},
		{Name: "rowc", Distinct: 1489, Min: 0, Max: 1489},
		{Name: "colc", Distinct: 2048, Min: 0, Max: 2048},
		{Name: "run", Distinct: 1000, Min: 94, Max: 8162},
		{Name: "rerun", Distinct: 50, Min: 0, Max: 301},
		{Name: "camcol", Distinct: 6, Min: 1, Max: 6},
		{Name: "field", Distinct: 1000, Min: 11, Max: 1000},
		{Name: "htmid", Distinct: 700_000_000, Min: 0, Max: 1.8e16},
	}

	c.AddTable(&Table{Name: "PhotoObj", Rows: 794_328_715, Columns: photoCols})
	c.AddTable(&Table{Name: "PhotoObjAll", Rows: 1_281_364_002, Columns: photoCols})
	c.AddTable(&Table{Name: "PhotoPrimary", Rows: 582_000_000, Columns: photoCols})
	c.AddTable(&Table{Name: "PhotoTag", Rows: 794_328_715, Columns: photoCols})
	c.AddTable(&Table{Name: "Galaxy", Rows: 348_000_000, Columns: photoCols})
	c.AddTable(&Table{Name: "Star", Rows: 260_000_000, Columns: photoCols})

	specCols := []Column{
		{Name: "specobjid", Distinct: 4_311_571, Min: 1, Max: 9.3e18},
		{Name: "bestobjid", Distinct: 4_311_571, Min: 1, Max: 9.3e18},
		{Name: "objid", Distinct: 4_311_571, Min: 1, Max: 9.3e18},
		{Name: "ra", Distinct: 4_000_000, Min: 0, Max: 360},
		{Name: "dec", Distinct: 4_000_000, Min: -90, Max: 90},
		{Name: "z", Distinct: 2_000_000, Min: -0.01, Max: 7},
		{Name: "zerr", Distinct: 500_000, Min: 0, Max: 1},
		{Name: "zconf", Distinct: 1000, Min: 0, Max: 1},
		{Name: "specclass", Distinct: 6, Min: 0, Max: 5},
		{Name: "plate", Distinct: 2874, Min: 266, Max: 3000},
		{Name: "mjd", Distinct: 2000, Min: 51578, Max: 55000},
		{Name: "fiberid", Distinct: 640, Min: 1, Max: 640},
		{Name: "modelmag_u", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "modelmag_g", Distinct: 300_000, Min: 10, Max: 30},
		{Name: "flags_g", Distinct: 50_000, Min: 0, Max: 9.2e18},
		{Name: "psfmagerr_u", Distinct: 100_000, Min: 0, Max: 5},
		{Name: "psfmagerr_g", Distinct: 100_000, Min: 0, Max: 5},
	}
	c.AddTable(&Table{Name: "SpecObj", Rows: 4_311_571, Columns: specCols})
	c.AddTable(&Table{Name: "SpecObjAll", Rows: 5_135_742, Columns: specCols})
	c.AddTable(&Table{Name: "SpecPhoto", Rows: 3_900_000, Columns: append(append([]Column{}, specCols...), photoCols[1:12]...)})
	c.AddTable(&Table{Name: "SpecPhotoAll", Rows: 4_500_000, Columns: append(append([]Column{}, specCols...), photoCols[1:12]...)})

	c.AddTable(&Table{Name: "Field", Rows: 900_000, Columns: []Column{
		{Name: "fieldid", Distinct: 900_000, Min: 1, Max: 9e17},
		{Name: "run", Distinct: 1000, Min: 94, Max: 8162},
		{Name: "camcol", Distinct: 6, Min: 1, Max: 6},
		{Name: "field", Distinct: 1000, Min: 11, Max: 1000},
		{Name: "ra", Distinct: 800_000, Min: 0, Max: 360},
		{Name: "dec", Distinct: 800_000, Min: -90, Max: 90},
	}})

	c.AddTable(&Table{Name: "Neighbors", Rows: 2_600_000_000, Columns: []Column{
		{Name: "objid", Distinct: 500_000_000, Min: 1, Max: 9.3e18},
		{Name: "neighborobjid", Distinct: 500_000_000, Min: 1, Max: 9.3e18},
		{Name: "distance", Distinct: 100_000, Min: 0, Max: 0.5},
		{Name: "type", Distinct: 7, Min: 0, Max: 6},
		{Name: "neighbortype", Distinct: 7, Min: 0, Max: 6},
		{Name: "mode", Distinct: 3, Min: 1, Max: 3},
	}})

	// CasJobs service tables (the paper's Q2 touches Jobs/Servers/...).
	c.AddTable(&Table{Name: "Jobs", Rows: 120_000, Columns: []Column{
		{Name: "jobid", Distinct: 120_000, Min: 1, Max: 120000},
		{Name: "target", Distinct: 40, Min: 0, Max: 0},
		{Name: "estimate", Distinct: 500, Min: 0, Max: 10000},
		{Name: "queue", Distinct: 8, Min: 1, Max: 8},
		{Name: "outputtype", Distinct: 6, Min: 0, Max: 0},
		{Name: "uid", Distinct: 9000, Min: 1, Max: 9000},
		{Name: "status", Distinct: 7, Min: 0, Max: 6},
	}})
	c.AddTable(&Table{Name: "Users", Rows: 9_000, Columns: []Column{
		{Name: "id", Distinct: 9000, Min: 1, Max: 9000},
		{Name: "webname", Distinct: 9000, Min: 0, Max: 0},
	}})
	c.AddTable(&Table{Name: "Status", Rows: 7, Columns: []Column{
		{Name: "id", Distinct: 7, Min: 0, Max: 6},
		{Name: "name", Distinct: 7, Min: 0, Max: 0},
	}})
	c.AddTable(&Table{Name: "Servers", Rows: 40, Columns: []Column{
		{Name: "name", Distinct: 40, Min: 0, Max: 0},
		{Name: "target", Distinct: 12, Min: 0, Max: 0},
		{Name: "queue", Distinct: 8, Min: 1, Max: 8},
	}})

	// The SDSS dbo.f* function library (a representative subset of the
	// 467 functions). Costs are seconds per call.
	for _, f := range []Function{
		{Name: "fPhotoFlags", CostPerCall: 4e-6},
		{Name: "fPhotoStatus", CostPerCall: 4e-6},
		{Name: "fPhotoType", CostPerCall: 3e-6},
		{Name: "fSpecClass", CostPerCall: 3e-6},
		{Name: "fGetNearbyObjEq", CostPerCall: 2e-2},
		{Name: "fGetNearestObjEq", CostPerCall: 1.5e-2},
		{Name: "fGetObjFromRect", CostPerCall: 4e-2},
		{Name: "fDistanceArcMinEq", CostPerCall: 8e-6},
		{Name: "fGetURLExpid", CostPerCall: 6e-6},
		{Name: "fGetUrlFitsCFrame", CostPerCall: 6e-6},
		{Name: "fHtmXYZ", CostPerCall: 5e-6},
		{Name: "fObjidFromSDSS", CostPerCall: 4e-6},
		{Name: "fMJDToGMT", CostPerCall: 3e-6},
		{Name: "fMagToFlux", CostPerCall: 2e-6},
		{Name: "fStripeOfRun", CostPerCall: 2e-6},
		{Name: "fTileFromTiling", CostPerCall: 2e-6},
		// SQL built-in scalar functions.
		{Name: "abs", CostPerCall: 2e-8},
		{Name: "sqrt", CostPerCall: 4e-8},
		{Name: "power", CostPerCall: 6e-8},
		{Name: "log", CostPerCall: 5e-8},
		{Name: "log10", CostPerCall: 5e-8},
		{Name: "exp", CostPerCall: 5e-8},
		{Name: "sin", CostPerCall: 5e-8},
		{Name: "cos", CostPerCall: 5e-8},
		{Name: "tan", CostPerCall: 5e-8},
		{Name: "atan2", CostPerCall: 6e-8},
		{Name: "radians", CostPerCall: 3e-8},
		{Name: "degrees", CostPerCall: 3e-8},
		{Name: "round", CostPerCall: 3e-8},
		{Name: "floor", CostPerCall: 2e-8},
		{Name: "ceiling", CostPerCall: 2e-8},
		{Name: "str", CostPerCall: 8e-8},
		{Name: "substring", CostPerCall: 8e-8},
		{Name: "len", CostPerCall: 3e-8},
		{Name: "upper", CostPerCall: 5e-8},
		{Name: "lower", CostPerCall: 5e-8},
		{Name: "isnull", CostPerCall: 2e-8},
		{Name: "coalesce", CostPerCall: 3e-8},
		{Name: "datediff", CostPerCall: 6e-8},
		{Name: "getdate", CostPerCall: 5e-8},
		{Name: "count", CostPerCall: 1e-8, Aggregate: true},
		{Name: "sum", CostPerCall: 1e-8, Aggregate: true},
		{Name: "avg", CostPerCall: 1.5e-8, Aggregate: true},
		{Name: "min", CostPerCall: 1e-8, Aggregate: true},
		{Name: "max", CostPerCall: 1e-8, Aggregate: true},
		{Name: "stdev", CostPerCall: 2e-8, Aggregate: true},
		{Name: "var", CostPerCall: 2e-8, Aggregate: true},
	} {
		fn := f
		c.AddFunction(&fn)
	}

	for _, p := range []Function{
		{Name: "spGetNeighbors", CostPerCall: 0.8},
		{Name: "spGetMatch", CostPerCall: 0.5},
		{Name: "spExecuteSQL", CostPerCall: 0.3},
		{Name: "sp_help", CostPerCall: 0.05},
		{Name: "sp_tables", CostPerCall: 0.04},
		{Name: "sp_columns", CostPerCall: 0.04},
	} {
		pr := p
		c.AddProcedure(&pr)
	}
	return c
}

// sqlShareAdjectives/nouns give user tables SQLShare's ad-hoc flavour
// ("uniprot_go_annotations", "sensor_readings_clean", ...).
var sqlShareNouns = []string{
	"readings", "annotations", "samples", "genes", "proteins", "taxa",
	"measurements", "counts", "events", "records", "metadata", "summary",
	"results", "stations", "profiles", "sequences", "abundance", "sites",
	"observations", "trials", "cruise", "plates", "peptides", "spectra",
}

var sqlSharePrefixes = []string{
	"uniprot", "sensor", "ocean", "lake", "census", "survey", "clinical",
	"weather", "traffic", "genome", "microbe", "coral", "seaflow", "army",
	"billing", "sales", "hydro", "air", "soil", "field", "lab", "qc",
}

var sqlShareColumns = []string{
	"id", "name", "value", "time", "date", "lat", "lon", "depth", "temp",
	"salinity", "count", "score", "pvalue", "category", "label", "group_id",
	"station", "sample_id", "gene", "protein", "taxon", "abundance",
	"quality", "flag", "source", "run_id", "batch", "concentration",
}

// NewSQLShareCatalog builds a per-user catalog of uploaded datasets.
// Each user owns a handful of small-to-medium tables with their own
// naming conventions: this is what makes word-level vocabularies
// explode across users (the Heterogeneous Schema pathology).
func NewSQLShareCatalog(user string, rng *rand.Rand) *Catalog {
	c := newCatalog("sqlshare:" + user)
	numTables := 2 + rng.Intn(6)
	for i := 0; i < numTables; i++ {
		prefix := sqlSharePrefixes[rng.Intn(len(sqlSharePrefixes))]
		noun := sqlShareNouns[rng.Intn(len(sqlShareNouns))]
		name := fmt.Sprintf("%s_%s_%s", user, prefix, noun)
		if rng.Intn(3) == 0 {
			name = fmt.Sprintf("%s_%s", user, noun)
		}
		rows := int64(500 * (1 << uint(rng.Intn(18)))) // 500 .. ~131M
		numCols := 3 + rng.Intn(10)
		cols := make([]Column, 0, numCols)
		seen := map[string]bool{}
		for len(cols) < numCols {
			base := sqlShareColumns[rng.Intn(len(sqlShareColumns))]
			if seen[base] {
				continue
			}
			seen[base] = true
			distinct := int64(1 + rng.Intn(int(rows)))
			cols = append(cols, Column{
				Name:     base,
				Distinct: distinct,
				Min:      0,
				Max:      float64(10 * (1 + rng.Intn(1000))),
				NullFrac: float64(rng.Intn(10)) / 100,
			})
		}
		c.AddTable(&Table{Name: name, Rows: rows, Columns: cols})
	}
	// SQLShare exposes standard SQL built-ins only.
	for _, f := range []Function{
		{Name: "count", CostPerCall: 1e-8, Aggregate: true},
		{Name: "sum", CostPerCall: 1e-8, Aggregate: true},
		{Name: "avg", CostPerCall: 1.5e-8, Aggregate: true},
		{Name: "min", CostPerCall: 1e-8, Aggregate: true},
		{Name: "max", CostPerCall: 1e-8, Aggregate: true},
		{Name: "stdev", CostPerCall: 2e-8, Aggregate: true},
		{Name: "abs", CostPerCall: 2e-8},
		{Name: "round", CostPerCall: 3e-8},
		{Name: "upper", CostPerCall: 5e-8},
		{Name: "lower", CostPerCall: 5e-8},
		{Name: "substring", CostPerCall: 8e-8},
		{Name: "len", CostPerCall: 3e-8},
		{Name: "cast", CostPerCall: 4e-8},
		{Name: "coalesce", CostPerCall: 3e-8},
	} {
		fn := f
		c.AddFunction(&fn)
	}
	return c
}

// TableNames returns the catalog's table names in sorted order.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.Tables))
	for _, t := range c.Tables {
		names = append(names, t.Name)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
